package symexec

import (
	"context"
	"strings"
	"testing"

	"repro/internal/lower"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/summary"
	"repro/internal/sym"
)

// summarize lowers src, installs the Linux DPM specs plus any extra DSL,
// and summarizes the named function (its callees must be predefined).
func summarize(t *testing.T, src, fn string, cfg Config) Result {
	t.Helper()
	prog, err := lower.SourceString("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	db := summary.NewDB()
	spec.LinuxDPM().ApplyTo(db)
	spec.PythonC().ApplyTo(db)
	ex := New(db, solver.New(), cfg)
	f := prog.Funcs[fn]
	if f == nil {
		t.Fatalf("function %s not found", fn)
	}
	return ex.Summarize(context.Background(), f)
}

func TestStraightLineEntry(t *testing.T) {
	res := summarize(t, `
int f(struct device *dev) {
    pm_runtime_get_sync(dev);
    return 0;
}`, "f", DefaultConfig())
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
	e := res.Entries[0]
	if c, ok := e.Changes["[dev].pm"]; !ok || c.Delta != 1 {
		t.Errorf("changes: %v", e.Changes)
	}
	if e.Ret == nil || e.Ret.Key() != "0" {
		t.Errorf("ret: %v", e.Ret)
	}
	// Constraint records [0] = 0.
	if !strings.Contains(e.Cons.String(), "[0]") {
		t.Errorf("cons: %s", e.Cons)
	}
}

func TestBranchConstraintOnArgument(t *testing.T) {
	res := summarize(t, `
int f(struct device *dev, int a) {
    if (a > 0)
        pm_runtime_get_sync(dev);
    return 0;
}`, "f", DefaultConfig())
	if len(res.Entries) != 2 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
	// One entry constrained [a] > 0 with +1; the other [a] <= 0 with none.
	var withChange, without *summary.Entry
	for _, e := range res.Entries {
		if len(e.Changes) > 0 {
			withChange = e.Entry
		} else {
			without = e.Entry
		}
	}
	if withChange == nil || without == nil {
		t.Fatal("expected one changing and one unchanged entry")
	}
	if !strings.Contains(withChange.Cons.String(), "[a] > 0") {
		t.Errorf("changing cons: %s", withChange.Cons)
	}
	if !strings.Contains(without.Cons.String(), "[a] <= 0") {
		t.Errorf("unchanged cons: %s", without.Cons)
	}
}

func TestCalleeEntriesFork(t *testing.T) {
	// Py_XDECREF has two entries; the state forks per entry.
	res := summarize(t, `
void f(PyObject *o) {
    Py_XDECREF(o);
}`, "f", DefaultConfig())
	if len(res.Entries) != 2 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
}

func TestInfeasibleForkPruned(t *testing.T) {
	// assert(o != NULL) makes Py_XDECREF's null entry unsatisfiable.
	res := summarize(t, `
void f(PyObject *o) {
    assert(o != NULL);
    Py_XDECREF(o);
}`, "f", DefaultConfig())
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d (pruning failed)", len(res.Entries))
	}
	if res.Entries[0].Changes["[o].rc"].Delta != -1 {
		t.Errorf("changes: %v", res.Entries[0].Changes)
	}
}

func TestNoPruningKeepsForkUntilFinalize(t *testing.T) {
	// Even with Algorithm-1 pruning off, finalization's satisfiability
	// check drops the contradictory entry.
	cfg := Config{MaxPaths: 100, MaxSubcases: 10, NoPrune: true}
	res := summarize(t, `
void f(PyObject *o) {
    assert(o != NULL);
    Py_XDECREF(o);
}`, "f", cfg)
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
}

func TestReturnedFreshBecomesRetZero(t *testing.T) {
	// A returned random value is pinned to [0]: reg_read's Figure-2 shape.
	res := summarize(t, `
int f(struct device *d) {
    int ret;
    ret = random();
    if (ret >= 0)
        return ret;
    return -1;
}`, "f", DefaultConfig())
	if len(res.Entries) != 2 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
	foundGE := false
	for _, e := range res.Entries {
		if strings.Contains(e.Cons.String(), "([0] >= 0)") && e.Ret.Kind == sym.KRet {
			foundGE = true
		}
	}
	if !foundGE {
		for _, e := range res.Entries {
			t.Logf("entry: %s", e)
		}
		t.Error("pinning of returned local to [0] failed")
	}
}

func TestLoopBranchConditionReplaced(t *testing.T) {
	// The loop condition is re-executed on the unrolled path; Figure 6's
	// replacement rule keeps only the final (exit) condition, so both
	// paths finalize feasibly even though i never changes symbolically in
	// a comparable way.
	res := summarize(t, `
int f(struct device *dev, int n) {
    int i = 0;
    while (i < n) {
        pm_runtime_get_sync(dev);
        pm_runtime_put(dev);
        i = step(i);
    }
    return 0;
}`, "f", DefaultConfig())
	if len(res.Entries) < 2 {
		t.Fatalf("entries: %d (unrolled path lost?)", len(res.Entries))
	}
	for _, e := range res.Entries {
		if len(e.Changes) != 0 {
			t.Errorf("balanced loop has net change: %s", e)
		}
	}
}

func TestSubcaseBudgetTruncates(t *testing.T) {
	// Each Py_XDECREF doubles the states: 2^6 = 64 > 4.
	src := `void f(PyObject *a, PyObject *b, PyObject *c, PyObject *d, PyObject *e, PyObject *g) {
    Py_XDECREF(a); Py_XDECREF(b); Py_XDECREF(c);
    Py_XDECREF(d); Py_XDECREF(e); Py_XDECREF(g);
}`
	cfg := Config{MaxPaths: 100, MaxSubcases: 4}
	res := summarize(t, src, "f", cfg)
	if !res.Truncated {
		t.Error("sub-case budget must mark truncation")
	}
	if len(res.Entries) > 4 {
		t.Errorf("entries: %d", len(res.Entries))
	}
}

func TestUnknownCalleeHavocsResult(t *testing.T) {
	res := summarize(t, `
int f(struct device *dev) {
    int v;
    v = mystery(dev);
    if (v < 0)
        return -1;
    return 0;
}`, "f", DefaultConfig())
	// Both branches feasible: the unknown callee's result is
	// unconstrained.
	if len(res.Entries) != 2 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
}

func TestSiteStableFreshNames(t *testing.T) {
	// The same allocation site must produce the same refcount key on
	// every path through it.
	res := summarize(t, `
int f(PyObject *fmt, int a) {
    PyObject *o;
    o = Py_BuildValue(fmt);
    if (o == NULL)
        return -1;
    if (a > 0)
        return -1;
    return -1;
}`, "f", DefaultConfig())
	keys := map[string]bool{}
	for _, e := range res.Entries {
		for k := range e.Changes {
			keys[k] = true
		}
	}
	if len(keys) != 1 {
		t.Errorf("allocation object has %d identities: %v", len(keys), keys)
	}
}

func TestVoidReturnEntry(t *testing.T) {
	res := summarize(t, `
void f(struct device *dev) {
    pm_runtime_get(dev);
}`, "f", DefaultConfig())
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
	if res.Entries[0].Ret != nil {
		t.Errorf("void function returned %s", res.Entries[0].Ret)
	}
}

func TestFieldChainArguments(t *testing.T) {
	res := summarize(t, `
void f(struct usb_interface *intf) {
    pm_runtime_get_sync(&intf->dev);
}`, "f", DefaultConfig())
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
	if _, ok := res.Entries[0].Changes["[intf].dev.pm"]; !ok {
		t.Errorf("changes: %v", res.Entries[0].Changes)
	}
}

func TestDeadBranchEliminated(t *testing.T) {
	res := summarize(t, `
int f(struct device *dev) {
    int x = 1;
    if (x > 5) {
        pm_runtime_get(dev);
        return 1;
    }
    return 0;
}`, "f", DefaultConfig())
	// The constant-false branch's path is infeasible; only one entry.
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
	if len(res.Entries[0].Changes) != 0 {
		t.Errorf("dead get survived: %s", res.Entries[0].Entry)
	}
}

func TestPathIndexTags(t *testing.T) {
	res := summarize(t, `
int f(int a) {
    if (a > 0)
        return 1;
    return 0;
}`, "f", DefaultConfig())
	seen := map[int]bool{}
	for _, e := range res.Entries {
		seen[e.PathIndex] = true
	}
	if len(seen) != 2 {
		t.Errorf("path indices: %v", seen)
	}
}

func TestAssumeConstrains(t *testing.T) {
	res := summarize(t, `
int f(int a) {
    assert(a > 3);
    if (a > 0)
        return 1;
    return 0;
}`, "f", DefaultConfig())
	// a > 3 makes the a <= 0 path infeasible.
	if len(res.Entries) != 1 {
		t.Fatalf("entries: %d", len(res.Entries))
	}
	if res.Entries[0].Ret.Key() != "1" {
		t.Errorf("ret: %s", res.Entries[0].Ret)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxPaths != 100 || c.MaxSubcases != 10 {
		t.Errorf("defaults: %+v", c)
	}
	d := DefaultConfig()
	if d.NoPrune {
		t.Error("default config must prune")
	}
	if comparable_(d.withDefaults()) != comparable_(d) {
		t.Errorf("DefaultConfig must be the fixed point of defaulting: %+v", d.withDefaults())
	}
}

// comparable_ projects Config onto its value fields (dropping the
// OnFunction hook, which makes the struct non-comparable).
func comparable_(c Config) [5]int {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	return [5]int{c.MaxPaths, c.MaxSubcases, c.PathWorkers, b2i(c.NoPrune), b2i(c.KeepLocalConds)}
}

// TestConfigWithDefaultsTable drives withDefaults over every zero/nonzero
// combination of the budget fields plus the flag fields: a
// partially-populated Config must get the paper's value for each unset
// field and keep every explicitly set one — no field's default may depend
// on a sibling being set (the pre-fix bug dropped MaxSubcases and pruning
// when only one budget was given).
func TestConfigWithDefaultsTable(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{"zero", Config{}, Config{MaxPaths: 100, MaxSubcases: 10}},
		{"paths only", Config{MaxPaths: 7}, Config{MaxPaths: 7, MaxSubcases: 10}},
		{"subcases only", Config{MaxSubcases: 3}, Config{MaxPaths: 100, MaxSubcases: 3}},
		{"both budgets", Config{MaxPaths: 7, MaxSubcases: 3}, Config{MaxPaths: 7, MaxSubcases: 3}},
		{"noprune survives", Config{NoPrune: true}, Config{MaxPaths: 100, MaxSubcases: 10, NoPrune: true}},
		{"noprune with paths", Config{MaxPaths: 7, NoPrune: true}, Config{MaxPaths: 7, MaxSubcases: 10, NoPrune: true}},
		{"keep locals survives", Config{KeepLocalConds: true}, Config{MaxPaths: 100, MaxSubcases: 10, KeepLocalConds: true}},
		{"path workers survive", Config{PathWorkers: 4}, Config{MaxPaths: 100, MaxSubcases: 10, PathWorkers: 4}},
		{"everything set", Config{MaxPaths: 1, MaxSubcases: 2, PathWorkers: 3, NoPrune: true, KeepLocalConds: true},
			Config{MaxPaths: 1, MaxSubcases: 2, PathWorkers: 3, NoPrune: true, KeepLocalConds: true}},
	}
	for _, tc := range cases {
		got := tc.in.withDefaults()
		if comparable_(got) != comparable_(tc.want) {
			t.Errorf("%s: withDefaults(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
	}
	// The hook must survive normalization.
	called := false
	c := Config{OnFunction: func(string) { called = true }}.withDefaults()
	c.OnFunction("f")
	if !called {
		t.Error("OnFunction hook lost by withDefaults")
	}
}
