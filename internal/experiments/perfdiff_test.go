package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/solver"
)

func snapPoint(funcs int, classify, analyze time.Duration, phases ...obs.PhaseStats) PerfPoint {
	return PerfPoint{
		Funcs:        funcs,
		ClassifyTime: classify,
		AnalyzeTime:  analyze,
		Solver:       solver.Stats{Queries: 100, CacheHits: 40},
		Phases:       phases,
	}
}

func TestPerfSnapshotRoundTrip(t *testing.T) {
	points := []PerfPoint{
		snapPoint(50, 2*time.Millisecond, 9*time.Millisecond,
			obs.PhaseStats{Phase: "symexec", Count: 12, Total: 5 * time.Millisecond, P50: 300 * time.Microsecond, P95: time.Millisecond, Max: 2 * time.Millisecond}),
	}
	var buf bytes.Buffer
	if err := WritePerfSnapshot(&buf, 4, points); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 4 || len(got.Points) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	p := got.Points[0]
	if p.Funcs != 50 || p.ClassifyTime != 2*time.Millisecond || p.Solver.Queries != 100 {
		t.Errorf("point fields lost: %+v", p)
	}
	if len(p.Phases) != 1 || p.Phases[0].Phase != "symexec" || p.Phases[0].P95 != time.Millisecond {
		t.Errorf("phase histogram lost: %+v", p.Phases)
	}
}

func TestPerfSnapshotRejectsEmpty(t *testing.T) {
	if _, err := ReadPerfSnapshot(strings.NewReader(`{"workers":1,"points":[]}`)); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := ReadPerfSnapshot(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDiffPerf(t *testing.T) {
	old := &PerfSnapshot{Workers: 1, Points: []PerfPoint{
		snapPoint(50, 2*time.Millisecond, 10*time.Millisecond,
			obs.PhaseStats{Phase: "symexec", Count: 12, Total: 4 * time.Millisecond, P50: 200 * time.Microsecond, P95: 900 * time.Microsecond},
			obs.PhaseStats{Phase: "solver", Count: 90, Total: 3 * time.Millisecond, P50: 20 * time.Microsecond, P95: 80 * time.Microsecond}),
		snapPoint(500, 20*time.Millisecond, 100*time.Millisecond),
	}}
	cur := &PerfSnapshot{Workers: 1, Points: []PerfPoint{
		snapPoint(50, 2*time.Millisecond, 5*time.Millisecond,
			obs.PhaseStats{Phase: "symexec", Count: 12, Total: 6 * time.Millisecond, P50: 200 * time.Microsecond, P95: 900 * time.Microsecond},
			obs.PhaseStats{Phase: "replay", Count: 3, Total: time.Millisecond, P50: 300 * time.Microsecond, P95: 500 * time.Microsecond}),
		snapPoint(5000, 200*time.Millisecond, time.Second),
	}}
	out := DiffPerf(old, cur)

	for _, want := range []string{
		// analyze halved: -50%; classify unchanged: "~".
		"analyze", "-50.0%",
		// symexec total grew 4ms -> 6ms.
		"phase symexec total", "+50.0%",
		// replay exists only in the new run, solver only in the old.
		"phase replay total", "new",
		"phase solver total", "gone",
		// unmatched corpus sizes are called out, not dropped.
		"functions=5000: no matching point in old snapshot",
		"functions=500: present in old snapshot only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "classify") {
		t.Fatalf("no classify row:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "classify") && !strings.Contains(line, "~") {
			t.Errorf("unchanged classify not marked as noise: %q", line)
		}
	}
}

func TestDiffPerfWorkerMismatchWarns(t *testing.T) {
	old := &PerfSnapshot{Workers: 1, Points: []PerfPoint{snapPoint(50, time.Millisecond, time.Millisecond)}}
	cur := &PerfSnapshot{Workers: 4, Points: []PerfPoint{snapPoint(50, time.Millisecond, time.Millisecond)}}
	if out := DiffPerf(old, cur); !strings.Contains(out, "worker counts differ") {
		t.Errorf("no mismatch warning:\n%s", out)
	}
}
