package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestTable1SmallScale(t *testing.T) {
	r, err := Table1(context.Background(), Table1Config{Seed: 1, Helpers: 5, Complex: 7, Other: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.Refcount == 0 || r.AffectingAnalyzed == 0 || r.AffectingUnanalyzed == 0 || r.Other < 100 {
		t.Errorf("degenerate classification: %+v", r)
	}
	if got := r.Refcount + r.AffectingAnalyzed + r.AffectingUnanalyzed + r.Other; got != r.Total {
		t.Errorf("category sum %d != total %d", got, r.Total)
	}
	if !strings.Contains(r.Format(), "Table 1") {
		t.Error("format header missing")
	}
}

func TestDPMBugsScoring(t *testing.T) {
	r, err := DPMBugs(context.Background(), 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.MissedDetectable != 0 {
		t.Errorf("detectable bugs missed: %d", r.MissedDetectable)
	}
	if r.TrueBugs == 0 || r.Reports < r.TrueBugs {
		t.Errorf("scoring: %+v", r)
	}
	// Every false positive must come from the planted FP patterns (60
	// bit-op instances in PaperMix) — no accidental FPs anywhere else.
	if r.FalsePositives != 60 {
		t.Errorf("false positives = %d, want exactly the 60 planted FP patterns", r.FalsePositives)
	}
	// reports = true bugs + FPs exactly: nothing unaccounted.
	if r.Reports != r.TrueBugs+r.FalsePositives {
		t.Errorf("reports %d != true %d + FPs %d", r.Reports, r.TrueBugs, r.FalsePositives)
	}
	// The undetectable classes must actually be missed (they keep the
	// census honest).
	if r.MissedReal == 0 {
		t.Error("no missed bugs — the FN classes are not working")
	}
	if !strings.Contains(r.Format(), "§6.2") {
		t.Error("format header missing")
	}
}

func TestMisuseCensus(t *testing.T) {
	r, err := Misuse(context.Background(), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: 96 handled, 67 missing (≈70%), 40 detected (≈60%).
	if r.HandledSites != 96 {
		t.Errorf("handled sites = %d, want 96", r.HandledSites)
	}
	if r.MissingPut != 67 {
		t.Errorf("missing put = %d, want 67", r.MissingPut)
	}
	if r.RIDDetected != 40 {
		t.Errorf("RID detected = %d, want 40", r.RIDDetected)
	}
	// The dumb textual scanner must roughly agree with ground truth.
	if r.ScannerHandled != r.HandledSites || r.ScannerMissing != r.MissingPut {
		t.Errorf("scanner drift: handled %d vs %d, missing %d vs %d",
			r.ScannerHandled, r.HandledSites, r.ScannerMissing, r.MissingPut)
	}
}

func TestTable2ExactCounts(t *testing.T) {
	r, err := Table2(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.RIDFalsePositives != 0 || r.CpyFalsePositives != 0 {
		t.Errorf("false positives: RID=%d cpy=%d", r.RIDFalsePositives, r.CpyFalsePositives)
	}
	if r.RIDMissed != 0 || r.CpyMissed != 0 {
		t.Errorf("missed: RID=%d cpy=%d", r.RIDMissed, r.CpyMissed)
	}
	for _, row := range r.Rows {
		if row.Common != row.PaperRow[0] || row.RIDOnly != row.PaperRow[1] || row.CpyOnly != row.PaperRow[2] {
			t.Errorf("%s: got %d/%d/%d, paper %v", row.Program, row.Common, row.RIDOnly, row.CpyOnly, row.PaperRow)
		}
	}
	if r.Total.Common != 86 || r.Total.RIDOnly != 114 || r.Total.CpyOnly != 16 {
		t.Errorf("totals: %d/%d/%d", r.Total.Common, r.Total.RIDOnly, r.Total.CpyOnly)
	}
}

func TestPerfSeries(t *testing.T) {
	pts, err := Perf(context.Background(), []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Funcs == 0 {
		t.Errorf("points: %+v", pts)
	}
	if !strings.Contains(FormatPerf(pts, 1), "§6.5") {
		t.Error("format header missing")
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	base := byName["baseline (paper §6.1 settings)"]
	if base.Reports == 0 {
		t.Fatal("baseline produced no reports")
	}
	if keep := byName["keep local conditions (no §3.3.3 projection)"]; keep.Reports*10 > base.Reports {
		t.Errorf("keep-locals ablation should collapse reports: %d vs baseline %d", keep.Reports, base.Reports)
	}
	if pw := byName["path workers = 4 (§7 future work)"]; pw.Reports != base.Reports {
		t.Errorf("path workers changed reports: %d vs %d", pw.Reports, base.Reports)
	}
	havoc := byName["bit tests havocked (paper abstraction)"]
	preserved := byName["bit tests preserved (§5.4 future work)"]
	if havoc.FPs == 0 || preserved.FPs != 0 {
		t.Errorf("bit-test FPs: havoc=%d preserved=%d", havoc.FPs, preserved.FPs)
	}
	if havoc.TrueBugs != preserved.TrueBugs {
		t.Errorf("true bugs changed: %d vs %d", havoc.TrueBugs, preserved.TrueBugs)
	}
	if !strings.Contains(FormatAblations(rows), "configuration") {
		t.Error("format header missing")
	}
}
