package experiments

import (
	"context"
	"testing"
)

// TestPackEvalGates is the tier-1 quality gate for the shipped spec
// packs: on the seeded corpora every detectable bug is found (recall
// 1.0) and at most the by-design FP patterns are spurious (precision
// ≥ 0.9).
func TestPackEvalGates(t *testing.T) {
	scores, err := PackEval(context.Background(), 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("PackEval returned %d scores, want 2", len(scores))
	}
	for _, s := range scores {
		if s.Recall != 1.0 {
			t.Errorf("%s: recall = %.3f, want 1.0 (missed: %v)", s.Pack, s.Recall, s.Missed)
		}
		if s.Precision < 0.9 {
			t.Errorf("%s: precision = %.3f, want >= 0.9 (spurious: %v)", s.Pack, s.Precision, s.Spurious)
		}
		if s.TP == 0 {
			t.Errorf("%s: no true positives; the gate is vacuous", s.Pack)
		}
		if s.FP == 0 {
			t.Errorf("%s: no false positives; the FP pattern stopped firing and the precision gate is vacuous", s.Pack)
		}
	}
}

// TestScoreCounting pins the scorer's accounting on a hand-built case.
func TestScoreCounting(t *testing.T) {
	truth := map[string]GroundTruth{
		"hit":        {Real: true, Detectable: true},
		"miss":       {Real: true, Detectable: true},
		"unreach":    {Real: true},       // undetectable: excluded from recall
		"fp_pattern": {FPExpected: true}, // correct code, reported
		"clean":      {},                 // correct code, silent
	}
	reported := map[string]bool{"hit": true, "fp_pattern": true, "stranger": true}
	s := Score("x", truth, reported)
	if s.TP != 1 || s.FP != 2 || s.FN != 1 {
		t.Fatalf("TP/FP/FN = %d/%d/%d, want 1/2/1", s.TP, s.FP, s.FN)
	}
	if s.Recall != 0.5 {
		t.Errorf("recall = %v, want 0.5", s.Recall)
	}
	if len(s.Missed) != 1 || s.Missed[0] != "miss" {
		t.Errorf("missed = %v", s.Missed)
	}
	if len(s.Spurious) != 2 {
		t.Errorf("spurious = %v", s.Spurious)
	}
}
