package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus/kernelgen"
	"repro/internal/lower"
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symexec"
)

// AblationRow is one configuration's outcome on the shared ablation corpus.
type AblationRow struct {
	Name     string
	Reports  int
	Analyzed int
	FPs      int // reports on FP-expected functions (only for the bit-test rows)
	TrueBugs int
	Elapsed  time.Duration
}

// Ablations runs every design-decision ablation DESIGN.md §5 calls out on
// one seeded corpus and returns the rows in a fixed order. It is the code
// behind `ridbench -ablations` and mirrors the Benchmark* ablations.
func Ablations(ctx context.Context) ([]AblationRow, error) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: 9, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 50,
	})
	prog, err := BuildProgram(c.Files)
	if err != nil {
		return nil, err
	}

	var rows []AblationRow
	run := func(name string, opts core.Options) {
		t0 := time.Now()
		res := core.Analyze(ctx, prog, spec.LinuxDPM(), opts)
		rows = append(rows, AblationRow{
			Name:     name,
			Reports:  len(res.Reports),
			Analyzed: res.Stats.FuncsAnalyzed,
			Elapsed:  time.Since(t0),
		})
	}

	run("baseline (paper §6.1 settings)", core.Options{})
	run("no Alg-1 pruning", core.Options{Exec: symexec.Config{
		MaxPaths: 100, MaxSubcases: 10, NoPrune: true,
	}})
	run("keep local conditions (no §3.3.3 projection)", core.Options{Exec: symexec.Config{
		MaxPaths: 100, MaxSubcases: 10, KeepLocalConds: true,
	}})
	run("cat-2 gate = 1 branch", core.Options{MaxCat2Conds: 1})
	run("cat-2 gate = 8 branches", core.Options{MaxCat2Conds: 8})
	run("budgets 10 paths / 2 subcases", core.Options{Exec: symexec.Config{
		MaxPaths: 10, MaxSubcases: 2,
	}})
	run("budgets 1000 paths / 50 subcases", core.Options{Exec: symexec.Config{
		MaxPaths: 1000, MaxSubcases: 50,
	}})
	run("solver cache off", core.Options{NoCache: true})
	run("step-III bucketing off", core.Options{NoBucketing: true})
	prev := sym.SetInterning(false)
	run("expression interning off", core.Options{})
	sym.SetInterning(prev)
	run("path workers = 4 (§7 future work)", core.Options{Exec: symexec.Config{
		MaxPaths: 100, MaxSubcases: 10, PathWorkers: 4,
	}})

	// Bit-test preservation needs a differently lowered program; score FPs
	// and true bugs against ground truth for both abstractions.
	score := func(name string, preserve bool) error {
		p2, err := BuildProgramOpts(c.Files, lower.Options{PreserveBitTests: preserve})
		if err != nil {
			return err
		}
		t0 := time.Now()
		res := core.Analyze(ctx, p2, spec.LinuxDPM(), core.Options{})
		row := AblationRow{Name: name, Reports: len(res.Reports), Analyzed: res.Stats.FuncsAnalyzed, Elapsed: time.Since(t0)}
		hit := map[string]bool{}
		for _, r := range res.Reports {
			hit[r.Fn] = true
		}
		for fn, info := range c.Truth {
			switch {
			case info.FPExpected && hit[fn]:
				row.FPs++
			case info.Real && hit[fn]:
				row.TrueBugs++
			}
		}
		rows = append(rows, row)
		return nil
	}
	if err := score("bit tests havocked (paper abstraction)", false); err != nil {
		return nil, err
	}
	if err := score("bit tests preserved (§5.4 future work)", true); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAblations renders the rows as a table.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablations (one seeded corpus; see DESIGN.md §5)\n")
	fmt.Fprintf(&b, "%-46s %8s %9s %5s %9s %12s\n", "configuration", "reports", "analyzed", "FPs", "true-bugs", "time")
	for _, r := range rows {
		fp, tb := "-", "-"
		if r.FPs > 0 || r.TrueBugs > 0 {
			fp, tb = fmt.Sprint(r.FPs), fmt.Sprint(r.TrueBugs)
		}
		fmt.Fprintf(&b, "%-46s %8d %9d %5s %9s %12s\n",
			r.Name, r.Reports, r.Analyzed, fp, tb, r.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}
