package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sweepFixture is a synthetic 1/2/4-worker sweep: summed analyze time goes
// 200ms -> 100ms -> 100ms, so workers=2 is a perfect 2x (100% efficiency)
// and workers=4 stalls at the same 2x (50% efficiency).
func sweepFixture() *PerfSweep {
	point := func(paths int, analyze time.Duration) PerfPoint {
		p := snapPoint(50, time.Millisecond, analyze)
		p.Paths = paths
		return p
	}
	return &PerfSweep{Snapshots: []PerfSnapshot{
		{Workers: 1, Points: []PerfPoint{point(100, 60*time.Millisecond), point(400, 140*time.Millisecond)}},
		{Workers: 2, Points: []PerfPoint{point(100, 30*time.Millisecond), point(400, 70*time.Millisecond)}},
		{Workers: 4, Points: []PerfPoint{point(100, 40*time.Millisecond), point(400, 60*time.Millisecond)}},
	}}
}

func TestSweepSpeedup(t *testing.T) {
	s := sweepFixture()
	if sp, ok := s.Speedup(2); !ok || sp < 1.99 || sp > 2.01 {
		t.Errorf("workers=2 speedup = %v, %v; want 2.0", sp, ok)
	}
	if sp, ok := s.Speedup(4); !ok || sp < 1.99 || sp > 2.01 {
		t.Errorf("workers=4 speedup = %v, %v; want 2.0", sp, ok)
	}
	if sp, ok := s.Speedup(1); !ok || sp != 1 {
		t.Errorf("baseline speedup = %v, %v; want exactly 1", sp, ok)
	}
	if _, ok := s.Speedup(8); ok {
		t.Error("speedup for an absent setting must report !ok")
	}
	if _, ok := (&PerfSweep{}).Speedup(1); ok {
		t.Error("empty sweep must report !ok")
	}
}

func TestFormatPerfSweep(t *testing.T) {
	out := FormatPerfSweep(sweepFixture())
	for _, want := range []string{
		"workers", "efficiency",
		"1.00x", "100%", // baseline row
		"2.00x", // workers=2 and workers=4 both hit 2x...
		"50%",   // ...but workers=4 at half the efficiency
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
	// workers=2 at perfect scaling: the efficiency column shows 100% twice.
	if strings.Count(out, "100%") != 2 {
		t.Errorf("want two 100%% efficiency rows (workers 1 and 2):\n%s", out)
	}
}

func TestPerfSweepRoundTrip(t *testing.T) {
	s := sweepFixture()
	var buf bytes.Buffer
	if err := WritePerfSweep(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerfSweep(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Snapshots) != 3 || got.Snapshots[2].Workers != 4 {
		t.Fatalf("round trip: %+v", got)
	}
	if p := got.Snapshots[1].Points[1]; p.Paths != 400 || p.AnalyzeTime != 70*time.Millisecond {
		t.Errorf("point fields lost: %+v", p)
	}
	if _, err := ReadPerfSweep(strings.NewReader(`{"snapshots":[]}`)); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := ReadPerfSweep(strings.NewReader(`garbage`)); err == nil {
		t.Error("garbage accepted")
	}
}
