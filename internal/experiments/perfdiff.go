package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// ---------------------------------------------------------------------------
// §6.5 snapshots: save one -perf run to JSON, diff a later run against it

// PerfSnapshot is a serialized §6.5 scaling series, written by
// `ridbench -perf -perf-json file` and consumed by
// `ridbench -perf -compare file`. Durations are nanoseconds on the wire.
type PerfSnapshot struct {
	Workers int         `json:"workers"`
	Points  []PerfPoint `json:"points"`
}

// WritePerfSnapshot serializes a scaling series.
func WritePerfSnapshot(w io.Writer, workers int, points []PerfPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(PerfSnapshot{Workers: workers, Points: points})
}

// ReadPerfSnapshot loads a serialized scaling series.
func ReadPerfSnapshot(r io.Reader) (*PerfSnapshot, error) {
	var s PerfSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("perf snapshot: %w", err)
	}
	if len(s.Points) == 0 {
		return nil, fmt.Errorf("perf snapshot: no points")
	}
	return &s, nil
}

// DiffPerf renders a benchstat-style comparison of two scaling series:
// points are matched by corpus size, and for each matched point the
// top-level timings and every per-phase histogram row (total, p50, p95)
// are shown old vs new with a signed delta. Phases present on only one
// side are flagged rather than silently dropped.
func DiffPerf(old, new *PerfSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.5 perf diff (old workers=%d, new workers=%d)\n", old.Workers, new.Workers)
	if old.Workers != new.Workers {
		b.WriteString("  warning: worker counts differ; deltas mix scaling and scheduling effects\n")
	}
	oldByFuncs := map[int]PerfPoint{}
	for _, p := range old.Points {
		oldByFuncs[p.Funcs] = p
	}
	matched := map[int]bool{}
	for _, np := range new.Points {
		op, ok := oldByFuncs[np.Funcs]
		if !ok {
			fmt.Fprintf(&b, "functions=%d: no matching point in old snapshot\n", np.Funcs)
			continue
		}
		matched[np.Funcs] = true
		fmt.Fprintf(&b, "functions=%d\n", np.Funcs)
		fmt.Fprintf(&b, "  %-24s %12s %12s %9s\n", "metric", "old", "new", "delta")
		row(&b, "classify", op.ClassifyTime, np.ClassifyTime)
		row(&b, "analyze", op.AnalyzeTime, np.AnalyzeTime)
		countRow(&b, "solver queries", op.Solver.Queries, np.Solver.Queries)
		countRow(&b, "solver cache hits", op.Solver.CacheHits, np.Solver.CacheHits)
		diffPhases(&b, op.Phases, np.Phases)
	}
	for _, op := range old.Points {
		if !matched[op.Funcs] {
			fmt.Fprintf(&b, "functions=%d: present in old snapshot only\n", op.Funcs)
		}
	}
	return b.String()
}

func diffPhases(b *strings.Builder, old, new []obs.PhaseStats) {
	oldByPhase := map[string]obs.PhaseStats{}
	for _, ph := range old {
		if ph.Count > 0 {
			oldByPhase[ph.Phase] = ph
		}
	}
	seen := map[string]bool{}
	for _, np := range new {
		if np.Count == 0 {
			continue
		}
		seen[np.Phase] = true
		op, ok := oldByPhase[np.Phase]
		if !ok {
			fmt.Fprintf(b, "  %-24s %12s %12s %9s\n",
				"phase "+np.Phase+" total", "-", fmtDur(np.Total), "new")
			continue
		}
		row(b, "phase "+np.Phase+" total", op.Total, np.Total)
		row(b, "phase "+np.Phase+" p50", op.P50, np.P50)
		row(b, "phase "+np.Phase+" p95", op.P95, np.P95)
	}
	var gone []string
	for name := range oldByPhase {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(b, "  %-24s %12s %12s %9s\n",
			"phase "+name+" total", fmtDur(oldByPhase[name].Total), "-", "gone")
	}
}

func row(b *strings.Builder, name string, old, new time.Duration) {
	fmt.Fprintf(b, "  %-24s %12s %12s %9s\n", name, fmtDur(old), fmtDur(new), delta(float64(old), float64(new)))
}

func countRow(b *strings.Builder, name string, old, new int) {
	fmt.Fprintf(b, "  %-24s %12d %12d %9s\n", name, old, new, delta(float64(old), float64(new)))
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// delta formats the relative change new vs old, benchstat-style: signed
// percentage, "~" when the change is under 1% (noise for wall-clock
// histograms at these corpus sizes), and "?" when old is zero.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "~"
		}
		return "?"
	}
	pct := (new - old) / old * 100
	if pct < 1 && pct > -1 {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}
