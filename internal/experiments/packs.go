package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus/fdgen"
	"repro/internal/corpus/lockgen"
	"repro/internal/spec"
)

// GroundTruth is the pack-neutral label of one corpus function: every
// generator's BugInfo maps onto it, so one scorer serves the refcount,
// lock and fd corpora alike.
type GroundTruth struct {
	Real       bool // the function contains a real bug
	Detectable bool // the bug is within RID's reach (an IPP exists)
	FPExpected bool // correct code on which RID is expected to report
}

// PackScore is the precision/recall of one analysis run against ground
// truth. Recall is measured over the detectable bugs only — bugs outside
// the abstraction's reach (consistent imbalances, disjoint constant
// returns) are by construction invisible to any IPP checker.
type PackScore struct {
	Pack      string
	TP        int // reported, detectable bug
	FP        int // reported, no real bug
	FN        int // detectable bug, not reported
	Precision float64
	Recall    float64
	Missed    []string // FN function names, sorted
	Spurious  []string // FP function names, sorted
}

// Score grades a reported-function set against ground truth. Reports on
// functions absent from truth (e.g. wrappers) count as false positives.
func Score(pack string, truth map[string]GroundTruth, reported map[string]bool) PackScore {
	s := PackScore{Pack: pack}
	for fn, gt := range truth {
		switch {
		case gt.Real && gt.Detectable:
			if reported[fn] {
				s.TP++
			} else {
				s.FN++
				s.Missed = append(s.Missed, fn)
			}
		case reported[fn] && !gt.Real:
			s.FP++
			s.Spurious = append(s.Spurious, fn)
		}
	}
	for fn := range reported {
		if _, ok := truth[fn]; !ok {
			s.FP++
			s.Spurious = append(s.Spurious, fn)
		}
	}
	sort.Strings(s.Missed)
	sort.Strings(s.Spurious)
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	}
	return s
}

// PackEval runs the lock-imbalance and fd-leak packs over their seeded
// corpora and scores them. The same seeds feed the tier-1 gate and the
// EXPERIMENTS.md table.
func PackEval(ctx context.Context, seed int64, workers int) ([]PackScore, error) {
	var out []PackScore

	lc := lockgen.Generate(lockgen.Config{Seed: seed, Mix: lockgen.DefaultMix()})
	ls, err := evalCorpus(ctx, "lock", lc.Files, lockTruth(lc), spec.Lock(), workers)
	if err != nil {
		return nil, err
	}
	out = append(out, ls)

	fc := fdgen.Generate(fdgen.Config{Seed: seed, Mix: fdgen.DefaultMix()})
	fs, err := evalCorpus(ctx, "fd", fc.Files, fdTruth(fc), spec.FD(), workers)
	if err != nil {
		return nil, err
	}
	out = append(out, fs)
	return out, nil
}

func lockTruth(c *lockgen.Corpus) map[string]GroundTruth {
	truth := make(map[string]GroundTruth, len(c.Truth)+len(c.Wrappers))
	for fn, info := range c.Truth {
		truth[fn] = GroundTruth{Real: info.Real, Detectable: info.Detectable, FPExpected: info.FPExpected}
	}
	// Wrappers are correct by construction: a report on one is an FP.
	for _, w := range c.Wrappers {
		truth[w] = GroundTruth{}
	}
	return truth
}

func fdTruth(c *fdgen.Corpus) map[string]GroundTruth {
	truth := make(map[string]GroundTruth, len(c.Truth))
	for fn, info := range c.Truth {
		truth[fn] = GroundTruth{Real: info.Real, Detectable: info.Detectable, FPExpected: info.FPExpected}
	}
	return truth
}

func evalCorpus(ctx context.Context, pack string, files map[string]string, truth map[string]GroundTruth, sp *spec.Specs, workers int) (PackScore, error) {
	prog, err := BuildProgram(files)
	if err != nil {
		return PackScore{}, fmt.Errorf("%s corpus: %w", pack, err)
	}
	res := core.Analyze(ctx, prog, sp, core.Options{Workers: workers})
	reported := make(map[string]bool, len(res.Reports))
	for _, r := range res.Reports {
		reported[r.Fn] = true
	}
	return Score(pack, truth, reported), nil
}

// FormatPackScores renders the per-pack precision/recall table for
// EXPERIMENTS.md and ridbench -packs.
func FormatPackScores(scores []PackScore) string {
	out := "Spec packs: precision/recall on seeded corpora\n"
	out += "  pack   TP  FP  FN  precision  recall\n"
	for _, s := range scores {
		out += fmt.Sprintf("  %-5s %4d %3d %3d     %6.3f  %6.3f\n",
			s.Pack, s.TP, s.FP, s.FN, s.Precision, s.Recall)
	}
	return out
}
