package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// ---------------------------------------------------------------------------
// §6.5 worker sweep: the scaling series at several worker counts, with
// scaling efficiency relative to the first (lowest) setting

// PerfSweep is the result of `ridbench -workers 1,2,4,8 -perf`: one full
// perf snapshot per worker setting, in the order requested.
type PerfSweep struct {
	Snapshots []PerfSnapshot `json:"snapshots"`
}

// RunPerfSweep measures the §6.5 scaling series once per worker setting.
// The same corpora are analyzed at every setting (Perf regenerates them
// deterministically from the scale seed), so analyze-time ratios between
// settings are pure scheduling effects.
func RunPerfSweep(ctx context.Context, scales, workerList []int) (*PerfSweep, error) {
	sweep := &PerfSweep{}
	for _, w := range workerList {
		pts, err := Perf(ctx, scales, w)
		if err != nil {
			return nil, err
		}
		sweep.Snapshots = append(sweep.Snapshots, PerfSnapshot{Workers: w, Points: pts})
	}
	return sweep, nil
}

// analyzeTotal sums the analyze wall-clock across a snapshot's points.
func analyzeTotal(s PerfSnapshot) time.Duration {
	var d time.Duration
	for _, p := range s.Points {
		d += p.AnalyzeTime
	}
	return d
}

// pathsTotal sums the enumerated paths across a snapshot's points.
func pathsTotal(s PerfSnapshot) int {
	n := 0
	for _, p := range s.Points {
		n += p.Paths
	}
	return n
}

// Speedup returns the analyze-time speedup of the setting with the given
// worker count relative to the sweep's first setting (the baseline, by
// convention workers=1). ok is false when the setting is absent or a
// timing is zero.
func (s *PerfSweep) Speedup(workers int) (float64, bool) {
	if len(s.Snapshots) == 0 {
		return 0, false
	}
	base := analyzeTotal(s.Snapshots[0])
	for _, snap := range s.Snapshots {
		if snap.Workers == workers {
			at := analyzeTotal(snap)
			if base <= 0 || at <= 0 {
				return 0, false
			}
			return float64(base) / float64(at), true
		}
	}
	return 0, false
}

// FormatPerfSweep renders the sweep as one row per worker setting:
// analyze wall-clock (summed over the scaling series), throughput in
// paths/sec, speedup over the first setting, and scaling efficiency
// (speedup divided by the worker ratio — 100% is perfect linear scaling).
func FormatPerfSweep(s *PerfSweep) string {
	var b strings.Builder
	b.WriteString("§6.5: worker sweep (analyze summed over the scaling series; efficiency = speedup / workers)\n")
	fmt.Fprintf(&b, "%8s %14s %12s %9s %11s\n", "workers", "analyze", "paths/sec", "speedup", "efficiency")
	if len(s.Snapshots) == 0 {
		return b.String()
	}
	base := s.Snapshots[0]
	baseTime := analyzeTotal(base)
	for _, snap := range s.Snapshots {
		at := analyzeTotal(snap)
		pps := "-"
		if at > 0 {
			pps = fmt.Sprintf("%.0f", float64(pathsTotal(snap))/at.Seconds())
		}
		speedup, eff := "-", "-"
		if baseTime > 0 && at > 0 && base.Workers > 0 {
			sp := float64(baseTime) / float64(at)
			speedup = fmt.Sprintf("%.2fx", sp)
			eff = fmt.Sprintf("%.0f%%", sp/(float64(snap.Workers)/float64(base.Workers))*100)
		}
		fmt.Fprintf(&b, "%8d %14s %12s %9s %11s\n",
			snap.Workers, at.Round(time.Microsecond), pps, speedup, eff)
	}
	return b.String()
}

// WritePerfSweep serializes a sweep (the BENCH_section65.json format).
func WritePerfSweep(w io.Writer, s *PerfSweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadPerfSweep loads a serialized sweep.
func ReadPerfSweep(r io.Reader) (*PerfSweep, error) {
	var s PerfSweep
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("perf sweep: %w", err)
	}
	if len(s.Snapshots) == 0 {
		return nil, fmt.Errorf("perf sweep: no snapshots")
	}
	return &s, nil
}
