// Package experiments regenerates every table and statistic of the paper's
// evaluation (§6) against the synthetic corpora, and formats them in the
// paper's layout. It is shared by cmd/ridbench and the repository-level
// benchmarks so the numbers in EXPERIMENTS.md come from exactly one code
// path.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/baseline/cpyrule"
	"repro/internal/baseline/grepscan"
	"repro/internal/core"
	"repro/internal/corpus/kernelgen"
	"repro/internal/corpus/pycgen"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/spec"
)

// BuildProgram parses and lowers a generated file set into one program.
func BuildProgram(files map[string]string) (*ir.Program, error) {
	return BuildProgramOpts(files, lower.Options{})
}

// BuildProgramOpts is BuildProgram with explicit abstraction options (used
// by the bit-test ablation).
func BuildProgramOpts(files map[string]string, opts lower.Options) (*ir.Program, error) {
	prog := ir.NewProgram()
	// Deterministic order.
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		f, err := parser.ParseFile(n, files[n])
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", n, err)
		}
		if err := lower.IntoOpts(prog, f, opts); err != nil {
			return nil, fmt.Errorf("lower %s: %w", n, err)
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// ---------------------------------------------------------------------------
// Table 1: function classification

// Table1Config scales the classification corpus. The default approximates
// the Linux 3.17 proportions at 1/100 scale.
type Table1Config struct {
	Seed    int64
	Helpers int // simple category-2 helpers
	Complex int // complex category-2 helpers
	Other   int // category-3 mass
	Workers int
}

// DefaultTable1 returns the proportion-matched configuration: the PaperMix
// drivers plus wrappers form 246 category-1 functions, and the helper and
// utility counts are chosen so the category ratios track the paper's
// 2133 : 1889 : 2803 (cat-2 analyzed ≈ 0.886×cat-1, cat-2 skipped ≈
// 1.314×cat-1). The category-3 mass is generated at reduced scale (10k
// instead of 26k per unit of cat-1) to keep the bench fast; the shape —
// analysis concentrating on a few percent of the corpus — is preserved.
func DefaultTable1() Table1Config {
	return Table1Config{Seed: 317, Helpers: 250, Complex: 372, Other: 10000}
}

// Table1Result mirrors the paper's Table 1.
type Table1Result struct {
	Refcount            int
	AffectingAnalyzed   int
	AffectingUnanalyzed int
	Other               int
	Total               int
	ClassifyTime        time.Duration
	AnalyzeTime         time.Duration
	Reports             int
}

// Table1 generates the corpus and classifies it.
func Table1(ctx context.Context, cfg Table1Config) (*Table1Result, error) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed:           cfg.Seed,
		Mix:            kernelgen.PaperMix(),
		SimpleHelpers:  cfg.Helpers,
		ComplexHelpers: cfg.Complex,
		OtherFuncs:     cfg.Other,
	})
	prog, err := BuildProgram(c.Files)
	if err != nil {
		return nil, err
	}
	res := core.Analyze(ctx, prog, spec.LinuxDPM(), core.Options{Workers: cfg.Workers})
	cl := res.Classification
	return &Table1Result{
		Refcount:            cl.NumRefcount,
		AffectingAnalyzed:   cl.NumAffectingAnalyzed,
		AffectingUnanalyzed: cl.NumAffectingUnanalyzed,
		Other:               cl.NumOther,
		Total:               res.Stats.FuncsTotal,
		ClassifyTime:        res.Stats.ClassifyTime,
		AnalyzeTime:         res.Stats.AnalyzeTime,
		Reports:             len(res.Reports),
	}, nil
}

// Format renders the result in the paper's Table 1 layout, with the
// paper's own numbers alongside.
func (r *Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Functions in different categories (paper: Linux 3.17; here: synthetic, category ratios matched at ~1/9 of the paper's category-1 count)\n")
	fmt.Fprintf(&b, "%-46s %10s %10s\n", "Category", "measured", "paper")
	fmt.Fprintf(&b, "%-46s %10d %10d\n", "Functions with refcount changes", r.Refcount, 2133)
	fmt.Fprintf(&b, "%-46s %10d %10d\n", "Functions affecting those ... analyzed", r.AffectingAnalyzed, 1889)
	fmt.Fprintf(&b, "%-46s %10d %10d\n", "Functions affecting those ... not analyzed", r.AffectingUnanalyzed, 2803)
	fmt.Fprintf(&b, "%-46s %10d %10d\n", "The others", r.Other, 261391)
	fmt.Fprintf(&b, "%-46s %10d %10d\n", "Total", r.Total, 268216)
	return b.String()
}

// ---------------------------------------------------------------------------
// §6.2: DPM bugs (reports vs confirmed)

// DPMResult carries the §6.2-shaped statistics with ground truth.
type DPMResult struct {
	Reports          int // total IPP reports
	TrueBugs         int // reports on functions with real bugs
	FalsePositives   int // reports on correct functions
	MissedReal       int // real bugs (detectable or not) with no report
	MissedDetectable int // detectable real bugs with no report (must be 0)
	TotalRealBugs    int
	AnalyzeTime      time.Duration
}

// DPMBugs runs RID over the PaperMix corpus and scores against ground
// truth.
func DPMBugs(ctx context.Context, seed int64, workers int) (*DPMResult, error) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: seed, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 100,
	})
	prog, err := BuildProgram(c.Files)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res := core.Analyze(ctx, prog, spec.LinuxDPM(), core.Options{Workers: workers})
	out := &DPMResult{Reports: len(res.Reports), AnalyzeTime: time.Since(t0)}

	reported := make(map[string]bool)
	for _, r := range res.Reports {
		reported[r.Fn] = true
	}
	for fn, info := range c.Truth {
		if info.Real {
			out.TotalRealBugs++
			if reported[fn] {
				out.TrueBugs++
			} else {
				out.MissedReal++
				if info.Detectable {
					out.MissedDetectable++
				}
			}
		} else if reported[fn] {
			out.FalsePositives++
		}
	}
	return out, nil
}

// Format renders the §6.2 comparison.
func (r *DPMResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.2: DPM refcount bugs (paper: 83 confirmed new bugs out of 355 reports)\n")
	fmt.Fprintf(&b, "  reports:            %d\n", r.Reports)
	fmt.Fprintf(&b, "  confirmed (truth):  %d of %d real bugs planted\n", r.TrueBugs, r.TotalRealBugs)
	fmt.Fprintf(&b, "  false positives:    %d\n", r.FalsePositives)
	fmt.Fprintf(&b, "  missed (by design): %d (detectable missed: %d)\n", r.MissedReal, r.MissedDetectable)
	fmt.Fprintf(&b, "  precision:          %.0f%% (paper: %.0f%%)\n",
		pct(r.TrueBugs, r.Reports), pct(83, 355))
	return b.String()
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// ---------------------------------------------------------------------------
// §6.3: pm_runtime_get misuse census

// MisuseResult carries the §6.3 statistics.
type MisuseResult struct {
	HandledSites   int // error-handled direct get call sites (paper: 96)
	MissingPut     int // of those, missing the decrement (paper: 67)
	RIDDetected    int // of the missing, flagged by RID (paper: 40)
	ScannerHandled int // as counted by the textual scanner
	ScannerMissing int
}

// Misuse reruns the brute-force census and RID over the same corpus.
func Misuse(ctx context.Context, seed int64, workers int) (*MisuseResult, error) {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: seed, Mix: kernelgen.PaperMix(),
		SimpleHelpers: 10, ComplexHelpers: 8, OtherFuncs: 100,
	})
	prog, err := BuildProgram(c.Files)
	if err != nil {
		return nil, err
	}
	res := core.Analyze(ctx, prog, spec.LinuxDPM(), core.Options{Workers: workers})
	reported := make(map[string]bool)
	for _, r := range res.Reports {
		reported[r.Fn] = true
	}

	out := &MisuseResult{}
	for _, s := range c.Sites {
		if !s.Handled {
			continue
		}
		out.HandledSites++
		if s.MissingPut {
			out.MissingPut++
			if reported[s.Fn] {
				out.RIDDetected++
			}
		}
	}

	wrapperSet := make(map[string]bool)
	for _, w := range c.Wrappers {
		wrapperSet[w] = true
	}
	sc := &grepscan.Scanner{ExcludeFn: func(fn string) bool { return wrapperSet[fn] }}
	_, stats := sc.ScanAll(c.Files)
	out.ScannerHandled = stats.WithHandling
	out.ScannerMissing = stats.MissingPut
	return out, nil
}

// Format renders the §6.3 comparison.
func (r *MisuseResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.3: pm_runtime_get* call sites with error handling (paper: 96 sites, 67 missing put ≈70%%, RID found 40)\n")
	fmt.Fprintf(&b, "  error-handled call sites: %d (scanner: %d)\n", r.HandledSites, r.ScannerHandled)
	fmt.Fprintf(&b, "  missing the decrement:    %d = %.0f%% (scanner: %d; paper: 70%%)\n",
		r.MissingPut, pct(r.MissingPut, r.HandledSites), r.ScannerMissing)
	fmt.Fprintf(&b, "  detected by RID:          %d of %d = %.0f%% (paper: 40/67 = 60%%)\n",
		r.RIDDetected, r.MissingPut, pct(r.RIDDetected, r.MissingPut))
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2: RID vs Cpychecker on Python/C modules

// Table2Row is one module's comparison.
type Table2Row struct {
	Program  string
	Common   int // bugs found by both
	RIDOnly  int
	CpyOnly  int
	PaperRow [3]int // the paper's common/RID/Cpychecker numbers
}

// Table2Result is the full comparison.
type Table2Result struct {
	Rows  []Table2Row
	Total Table2Row
	// Scoring detail against ground truth.
	RIDFalsePositives int
	CpyFalsePositives int
	RIDMissed         int // bugs RID should have found (common/rid-only classes)
	CpyMissed         int
}

var paperTable2 = map[string][3]int{
	"krbV":    {48, 86, 14},
	"ldap":    {7, 13, 1},
	"pyaudio": {31, 15, 1},
}

// Table2 runs both tools over the three generated modules.
func Table2(ctx context.Context, workers int) (*Table2Result, error) {
	out := &Table2Result{}
	out.Total.Program = "total"
	for _, cfg := range pycgen.PaperConfigs() {
		m := pycgen.Generate(cfg)
		prog, err := BuildProgram(m.Files)
		if err != nil {
			return nil, err
		}
		res := core.Analyze(ctx, prog, spec.PythonC(), core.Options{Workers: workers})
		ridHits := make(map[string]bool)
		for _, r := range res.Reports {
			ridHits[r.Fn] = true
		}
		cpyHits := make(map[string]bool)
		for _, r := range cpyrule.New(spec.PythonC(), cpyrule.Config{}).Check(prog) {
			cpyHits[r.Fn] = true
		}
		row := Table2Row{Program: m.Name, PaperRow: paperTable2[m.Name]}
		for fn, cls := range m.Truth {
			isBug := cls != pycgen.ClassCorrect
			r, c := ridHits[fn], cpyHits[fn]
			if !isBug {
				if r {
					out.RIDFalsePositives++
				}
				if c {
					out.CpyFalsePositives++
				}
				continue
			}
			switch {
			case r && c:
				row.Common++
			case r:
				row.RIDOnly++
			case c:
				row.CpyOnly++
			}
			if (cls == pycgen.ClassCommon || cls == pycgen.ClassRIDOnly) && !r {
				out.RIDMissed++
			}
			if (cls == pycgen.ClassCommon || cls == pycgen.ClassCpyOnly) && !c {
				out.CpyMissed++
			}
		}
		out.Rows = append(out.Rows, row)
		out.Total.Common += row.Common
		out.Total.RIDOnly += row.RIDOnly
		out.Total.CpyOnly += row.CpyOnly
	}
	out.Total.PaperRow = [3]int{86, 114, 16}
	return out, nil
}

// Format renders the comparison in the paper's Table 2 layout.
func (r *Table2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: RID vs Cpychecker-style escape rule (paper numbers in parentheses)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "Program", "Common", "RID-only", "Cpychecker-only")
	row := func(t Table2Row) {
		fmt.Fprintf(&b, "%-12s %8d (%3d) %8d (%3d) %8d (%3d)\n",
			t.Program, t.Common, t.PaperRow[0], t.RIDOnly, t.PaperRow[1], t.CpyOnly, t.PaperRow[2])
	}
	for _, t := range r.Rows {
		row(t)
	}
	row(r.Total)
	fmt.Fprintf(&b, "scoring: RID FPs=%d missed=%d; baseline FPs=%d missed=%d\n",
		r.RIDFalsePositives, r.RIDMissed, r.CpyFalsePositives, r.CpyMissed)
	return b.String()
}

// ---------------------------------------------------------------------------
// §6.5: performance scaling

// PerfPoint is one corpus-size measurement.
type PerfPoint struct {
	Funcs        int
	Paths        int // paths enumerated by Step I (fixed per corpus, so paths/sec is comparable)
	ClassifyTime time.Duration
	AnalyzeTime  time.Duration
	Solver       solver.Stats // aggregated across all workers
	// Phases holds the per-phase wall-clock histograms of the run
	// (count, total, p50, p95, max per pipeline stage). Solver queries
	// are individually timed in this mode, so the "solver" row is
	// populated; the timing overhead is part of the measured run.
	Phases []obs.PhaseStats
}

// Perf measures classification and analysis time across corpus scales and
// worker counts.
func Perf(ctx context.Context, scales []int, workers int) ([]PerfPoint, error) {
	var out []PerfPoint
	for _, s := range scales {
		c := kernelgen.Generate(kernelgen.Config{
			Seed: int64(100 + s), Mix: scaleMix(kernelgen.PaperMix(), s),
			SimpleHelpers: 10 * s, ComplexHelpers: 8 * s, OtherFuncs: 200 * s,
		})
		prog, err := BuildProgram(c.Files)
		if err != nil {
			return nil, err
		}
		o := obs.New(nil, obs.NewRegistry())
		o.EnableQueryTiming()
		res := core.Analyze(ctx, prog, spec.LinuxDPM(), core.Options{Workers: workers, Obs: o})
		out = append(out, PerfPoint{
			Funcs:        res.Stats.FuncsTotal,
			Paths:        res.Stats.PathsEnumerated,
			ClassifyTime: res.Stats.ClassifyTime,
			AnalyzeTime:  res.Stats.AnalyzeTime,
			Solver:       res.Stats.Solver,
			Phases:       o.Registry().Snapshot().Phases,
		})
	}
	return out, nil
}

func scaleMix(m kernelgen.Mix, s int) kernelgen.Mix {
	return kernelgen.Mix{
		CorrectBalanced:   m.CorrectBalanced * s,
		CorrectErrHandled: m.CorrectErrHandled * s,
		CorrectWrapperUse: m.CorrectWrapperUse * s,
		CorrectHeld:       m.CorrectHeld * s,
		BugGetErrReturn:   m.BugGetErrReturn * s,
		BugWrapperErrPath: m.BugWrapperErrPath * s,
		BugWrapperMisuse:  m.BugWrapperMisuse * s,
		BugDoublePut:      m.BugDoublePut * s,
		BugIRQStyle:       m.BugIRQStyle * s,
		BugAsymmetricErr:  m.BugAsymmetricErr * s,
		BugLoopErrPath:    m.BugLoopErrPath * s,
		CorrectLoop:       m.CorrectLoop * s,
		CorrectSwitch:     m.CorrectSwitch * s,
		BugDeepWrapper:    m.BugDeepWrapper * s,
		FPBitmask:         m.FPBitmask * s,
	}
}

// FormatPerf renders the scaling series.
func FormatPerf(points []PerfPoint, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.5: performance scaling (workers=%d; paper: 64 min classify + 67 min analyze for 270k functions)\n", workers)
	fmt.Fprintf(&b, "%10s %14s %14s %10s %10s %8s %8s %8s\n",
		"functions", "classify", "analyze", "queries", "cachehits", "sat", "unsat", "gaveup")
	for _, p := range points {
		fmt.Fprintf(&b, "%10d %14s %14s %10d %10d %8d %8d %8d\n",
			p.Funcs, p.ClassifyTime.Round(time.Microsecond), p.AnalyzeTime.Round(time.Microsecond),
			p.Solver.Queries, p.Solver.CacheHits, p.Solver.Sat, p.Solver.Unsat, p.Solver.GaveUp)
	}
	b.WriteString("phase wall-clock histograms (per-query solver timing on):\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  functions=%d\n", p.Funcs)
		for _, ph := range p.Phases {
			if ph.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-10s count=%-8d total=%-12s p50=%-10s p95=%-10s max=%s\n",
				ph.Phase, ph.Count,
				ph.Total.Round(time.Microsecond),
				ph.P50.Round(time.Microsecond),
				ph.P95.Round(time.Microsecond),
				ph.Max.Round(time.Microsecond))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Persistent summary store: cold vs warm timing

// CachedPerfPoint is one corpus-size cold/warm measurement against a
// persistent summary store (ridbench -perf -cache-dir).
type CachedPerfPoint struct {
	Funcs     int
	Cold      time.Duration // AnalyzeTime of the store-populating run
	Warm      time.Duration // AnalyzeTime of the rerun over the same corpus
	Hits      int64         // warm-run store hits
	Misses    int64         // warm-run store misses
	Evictions int64         // warm-run store evictions
	Identical bool          // warm output byte-identical to cold output
	CacheIO   obs.PhaseStats

	// Fleet-store counters, summed over both runs (zero without a URL).
	RemoteHits      int64
	RemotePuts      int64
	RemoteErrors    int64
	RemoteIntegrity int64
	Degraded        bool // either run carried a cache-remote diagnostic
}

// PerfCached runs each corpus scale twice against a persistent summary
// store rooted at dir (one subdirectory per scale, so entries of different
// corpus sizes never collide): a cold run that populates the store and a
// warm run that should serve almost every function from it. The warm run's
// reports and diagnostics are compared byte-for-byte against the cold
// run's. A non-empty url layers the fleet store (`rid storeserve`) behind
// each run's local tier; with a misbehaving remote the point is marked
// Degraded but the byte-identity comparison still applies — remote
// trouble may cost warmth, never answers.
func PerfCached(ctx context.Context, scales []int, workers int, dir, url string) ([]CachedPerfPoint, error) {
	var out []CachedPerfPoint
	for _, s := range scales {
		c := kernelgen.Generate(kernelgen.Config{
			Seed: int64(100 + s), Mix: scaleMix(kernelgen.PaperMix(), s),
			SimpleHelpers: 10 * s, ComplexHelpers: 8 * s, OtherFuncs: 200 * s,
		})
		prog, err := BuildProgram(c.Files)
		if err != nil {
			return nil, err
		}
		sub := filepath.Join(dir, fmt.Sprintf("scale%d", s))
		run := func() (*core.Result, obs.Snapshot) {
			reg := obs.NewRegistry()
			res := core.Analyze(ctx, prog, spec.LinuxDPM(),
				core.Options{Workers: workers, Obs: obs.New(nil, reg), CacheDir: sub, CacheURL: url})
			return res, reg.Snapshot()
		}
		cold, csnap := run()
		warm, snap := run()
		p := CachedPerfPoint{
			Funcs:     cold.Stats.FuncsTotal,
			Cold:      cold.Stats.AnalyzeTime,
			Warm:      warm.Stats.AnalyzeTime,
			Hits:      snap.Counter(obs.MStoreHits),
			Misses:    snap.Counter(obs.MStoreMisses),
			Evictions: snap.Counter(obs.MStoreEvictions),
			Identical: renderOutcome(cold) == renderOutcome(warm),
			CacheIO:   snap.Phase(obs.PhaseCacheIO),

			RemoteHits:      csnap.Counter(obs.MRemoteHits) + snap.Counter(obs.MRemoteHits),
			RemotePuts:      csnap.Counter(obs.MRemotePuts) + snap.Counter(obs.MRemotePuts),
			RemoteErrors:    csnap.Counter(obs.MRemoteErrors) + snap.Counter(obs.MRemoteErrors),
			RemoteIntegrity: csnap.Counter(obs.MRemoteIntegrity) + snap.Counter(obs.MRemoteIntegrity),
		}
		for _, res := range []*core.Result{cold, warm} {
			for _, d := range res.Diagnostics {
				if d.Kind == core.DegradeCacheRemote {
					p.Degraded = true
				}
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// renderOutcome flattens a result's externally visible outcome — sorted
// reports with full two-entry detail, plus diagnostics — into one
// comparable string.
func renderOutcome(res *core.Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatPerfCached renders the cold/warm series.
func FormatPerfCached(points []CachedPerfPoint, workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "persistent summary store: cold vs warm analysis (workers=%d)\n", workers)
	fmt.Fprintf(&b, "%10s %14s %14s %8s %8s %8s %8s %10s\n",
		"functions", "cold", "warm", "speedup", "hits", "misses", "evict", "identical")
	for _, p := range points {
		speedup := "-"
		if p.Warm > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(p.Cold)/float64(p.Warm))
		}
		fmt.Fprintf(&b, "%10d %14s %14s %8s %8d %8d %8d %10t\n",
			p.Funcs, p.Cold.Round(time.Microsecond), p.Warm.Round(time.Microsecond),
			speedup, p.Hits, p.Misses, p.Evictions, p.Identical)
	}
	b.WriteString("warm-run cacheio histogram (digest + load + save spans):\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  functions=%-8d count=%-8d total=%-12s p50=%-10s p95=%-10s max=%s\n",
			p.Funcs, p.CacheIO.Count,
			p.CacheIO.Total.Round(time.Microsecond),
			p.CacheIO.P50.Round(time.Microsecond),
			p.CacheIO.P95.Round(time.Microsecond),
			p.CacheIO.Max.Round(time.Microsecond))
	}
	fleet := false
	for _, p := range points {
		fleet = fleet || p.Degraded ||
			p.RemoteHits+p.RemotePuts+p.RemoteErrors+p.RemoteIntegrity > 0
	}
	if fleet {
		b.WriteString("fleet store (read-through/write-behind, both runs):\n")
		for _, p := range points {
			fmt.Fprintf(&b, "  functions=%-8d remote_hits=%-8d remote_puts=%-8d remote_errors=%-8d remote_integrity_errors=%-8d degraded(cache-remote)=%t\n",
				p.Funcs, p.RemoteHits, p.RemotePuts, p.RemoteErrors, p.RemoteIntegrity, p.Degraded)
		}
	}
	return b.String()
}
