// Serve saturation benchmark types: the latency/throughput points that
// cmd/ridload measures against a running `rid serve` daemon, their table
// rendering, and the JSON snapshot format (BENCH_serve.json) — kept here
// so benchmark serialization lives in one package alongside the perf
// snapshots.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus/kernelgen"
)

// ServePoint is one concurrency level of a saturation run: Clients
// concurrent load-generator clients issued Requests total analyze
// requests; latency quantiles are over the OK (200) responses.
type ServePoint struct {
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Rejected   int     `json:"rejected"` // 429 admission rejections
	Errors     int     `json:"errors"`   // transport failures and non-200/429 statuses
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	Throughput float64 `json:"throughput_rps"` // OK responses per wall-clock second
	WallMS     float64 `json:"wall_ms"`

	// FirstError is the first transport/status failure at this level —
	// the diagnostic behind ridload's all-requests-failed exit.
	FirstError string `json:"first_error,omitempty"`

	// Scrape-derived fields (ridload -scrape): peak admission gauges and
	// hit ratios observed while this level ran. Zero when scraping off.
	ScrapeSamples int     `json:"scrape_samples,omitempty"`
	QueueMax      int64   `json:"queue_max,omitempty"`
	InflightMax   int64   `json:"inflight_max,omitempty"`
	MemoHitRatio  float64 `json:"memo_hit_ratio,omitempty"`
	StoreHitRatio float64 `json:"store_hit_ratio,omitempty"`
}

// ServeSweep is a whole saturation run: one point per concurrency level
// against one corpus.
type ServeSweep struct {
	Corpus string       `json:"corpus"` // e.g. "kernelgen scale=1 seed=317"
	Funcs  int          `json:"funcs"`  // functions per analyzed corpus
	Points []ServePoint `json:"points"`
}

// LatencyPoint folds raw per-request latencies into a ServePoint.
// lats are the OK-response latencies; wall is the level's total
// wall-clock.
func LatencyPoint(clients int, lats []time.Duration, rejected, errors int, wall time.Duration) ServePoint {
	p := ServePoint{
		Clients:  clients,
		Requests: len(lats) + rejected + errors,
		OK:       len(lats),
		Rejected: rejected,
		Errors:   errors,
		WallMS:   ms(wall),
	}
	if wall > 0 {
		p.Throughput = float64(len(lats)) / wall.Seconds()
	}
	if len(lats) == 0 {
		return p
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p.P50MS = ms(quantileDur(sorted, 0.50))
	p.P99MS = ms(quantileDur(sorted, 0.99))
	p.MaxMS = ms(sorted[len(sorted)-1])
	return p
}

// quantileDur is the exact q-quantile (nearest-rank) of a sorted slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// FormatServeSweep renders the saturation table.
func FormatServeSweep(s *ServeSweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rid serve saturation — %s (%d funcs per request)\n", s.Corpus, s.Funcs)
	fmt.Fprintf(&b, "%8s %8s %6s %6s %6s %12s %12s %12s %10s\n",
		"clients", "reqs", "ok", "429", "err", "p50", "p99", "max", "req/s")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%8d %8d %6d %6d %6d %11.1fms %11.1fms %11.1fms %10.2f\n",
			p.Clients, p.Requests, p.OK, p.Rejected, p.Errors, p.P50MS, p.P99MS, p.MaxMS, p.Throughput)
	}
	return b.String()
}

// FormatServeScrape renders the scrape-derived table (queue depth and
// hit-ratio curves); empty string when no point carries scrape data.
func FormatServeScrape(s *ServeSweep) string {
	any := false
	for _, p := range s.Points {
		if p.ScrapeSamples > 0 {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scrape curves (%s)\n", s.Corpus)
	fmt.Fprintf(&b, "%8s %8s %10s %12s %10s %10s\n",
		"clients", "samples", "queue_max", "inflight_max", "memo_hit", "store_hit")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%8d %8d %10d %12d %9.0f%% %9.0f%%\n",
			p.Clients, p.ScrapeSamples, p.QueueMax, p.InflightMax,
			100*p.MemoHitRatio, 100*p.StoreHitRatio)
	}
	return b.String()
}

// WriteServeSweep / ReadServeSweep are the BENCH_serve.json round-trip.
func WriteServeSweep(w io.Writer, s *ServeSweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func ReadServeSweep(r io.Reader) (*ServeSweep, error) {
	var s ServeSweep
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("read serve sweep: %w", err)
	}
	return &s, nil
}

// ServeCorpus generates the analyze-request corpus for the saturation
// benchmark: the same §6.5-shaped kernel corpus the perf series uses, at
// the given scale.
func ServeCorpus(scale int, seed int64) map[string]string {
	c := kernelgen.Generate(kernelgen.Config{
		Seed: seed, Mix: scaleMix(kernelgen.PaperMix(), scale),
		SimpleHelpers: 10 * scale, ComplexHelpers: 8 * scale, OtherFuncs: 200 * scale,
	})
	return c.Files
}
