package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Backend is the summary-store contract the analysis pipeline programs
// against. The local disk Store implements it; so do the remote client
// and the tiered local+remote composition in internal/store/remote. The
// semantics every implementation must honor (and storetest.Conform
// verifies) are the local store's:
//
//	Load:         (e, nil) hit · (nil, nil) miss/stale · (nil, err) an
//	              entry existed but cannot be trusted. An implementation
//	              backed by an unreliable medium (the network) may report
//	              untrustworthy entries as plain misses instead — it must
//	              never return a wrong entry.
//	Save:         idempotent per (fn, digest); concurrent saves of the
//	              same content must converge to one valid entry.
//	LookupDigest: content digests are global names; (nil, nil) when no
//	              entry carries the digest.
type Backend interface {
	Load(fn string, d Digest) (*Entry, error)
	Save(fn string, d Digest, e *Entry) error
	LookupDigest(d Digest) (*Entry, error)
}

var _ Backend = (*Store)(nil)

// EntryName is the file-safe name of fn's entry: the first 24 hex digits
// of SHA-256(fn). Client and server derive it independently — it is part
// of the wire format (DESIGN.md §13), so a GET for a name and a local
// path lookup always agree.
func EntryName(fn string) string {
	h := sha256.Sum256([]byte(fn))
	return hex.EncodeToString(h[:])[:24]
}

// EntryPath is the on-disk location of the named entry under a store
// rooted at dir: entries/<hh>/<name>.sum, with the two-digit fan-out
// level keeping any one directory bounded.
func EntryPath(dir, name string) string {
	return filepath.Join(dir, "entries", name[:2], name+".sum")
}

// RawInfo identifies a raw entry without decoding its payload: who it is
// for and under which digest and options fingerprint it was published.
type RawInfo struct {
	Fn          string
	Digest      Digest
	Fingerprint Digest
}

// ValidateRaw checks raw entry bytes end to end — magic, format version,
// header shape, payload length and checksum — and returns the entry's
// identity. It does NOT decode the JSON payload; both ends of the wire
// use it to refuse corrupt or version-skewed bytes before trusting (or
// storing, or serving) them. Never panics, whatever the bytes.
func ValidateRaw(data []byte) (RawInfo, error) {
	hdr, _, err := parseHeader(data)
	if err != nil {
		return RawInfo{}, err
	}
	return RawInfo{Fn: hdr.fn, Digest: hdr.digest, Fingerprint: hdr.fp}, nil
}

// EncodeEntry serializes e into the on-disk/wire format under the given
// fingerprint and digest: the checksummed RIDSUM header line followed by
// the JSON payload. The inverse of ParseEntry.
func EncodeEntry(e *Entry, fp, d Digest) ([]byte, error) {
	return encodeEntry(e, fp, d)
}

// Raw reads fn's entry bytes verbatim — header and payload, unvalidated.
// (nil, nil) when no entry exists. The write-behind tier uses it to ship
// exactly the bytes the local store published.
func (s *Store) Raw(fn string) ([]byte, error) {
	data, err := os.ReadFile(s.path(fn))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// PutRaw validates raw entry bytes and publishes them for fn with the
// same atomic-write dance as Save. It refuses bytes that fail validation
// or that belong to a different function — a remote tier can never plant
// a mislabeled entry in the local cache.
func (s *Store) PutRaw(fn string, data []byte) error {
	return s.putRaw(fn, data, true)
}

// PutRawCached is PutRaw without the fsyncs. It exists for exactly one
// caller: the tiered backend repopulating the local cache with an entry
// just fetched from the fleet. Those bytes are re-fetchable (the fleet
// still has them) and checksum-validated on every read, so a torn write
// after a crash costs one cache miss, not correctness — while the fsync
// it skips is the dominant cost of a warm-over-the-wire run. Anything
// authoritative (Save, the store server's PUT handler) must keep using
// the durable path.
func (s *Store) PutRawCached(fn string, data []byte) error {
	return s.putRaw(fn, data, false)
}

func (s *Store) putRaw(fn string, data []byte, durable bool) error {
	info, err := ValidateRaw(data)
	if err != nil {
		return fmt.Errorf("put raw entry: %w", err)
	}
	if info.Fn != fn {
		return fmt.Errorf("put raw entry: bytes are for %q, want %q", info.Fn, fn)
	}
	if _, err := writeAtomic(s.path(fn), data, durable); err != nil {
		return fmt.Errorf("put raw entry %s: %w", fn, err)
	}
	return nil
}

// writeAtomic publishes data at path via a same-directory temp file,
// fsync, rename, and parent-directory fsync, creating the parent as
// needed. existed reports whether the rename replaced a previous entry.
// A crash at any point leaves at worst an ignored *.tmp* file, never a
// partial entry, and a successful durable return survives a crash.
// durable=false skips both fsyncs: the rename is still atomic against
// concurrent readers, but a crash may leave the final name with partial
// content — callers accept that only for data that is re-fetchable and
// checksum-validated on read (see PutRawCached).
func writeAtomic(path string, data []byte, durable bool) (existed bool, err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	_, statErr := os.Stat(path)
	existed = statErr == nil
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return existed, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return existed, err
	}
	// Sync before the rename publishes the file: otherwise a crash can
	// leave the final name pointing at zero-length or partial content —
	// exactly the corruption the atomic-write dance exists to rule out.
	if durable {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return existed, fmt.Errorf("sync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return existed, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		// Do not leave the staged file behind: a *.tmp* orphan per failed
		// publish would otherwise accumulate until the directory fills.
		os.Remove(tmp.Name())
		return existed, fmt.Errorf("publish: %w", err)
	}
	// The rename is only durable once the directory entry is: fsync the
	// parent so a crash after return cannot silently drop a "published"
	// entry.
	if durable {
		if err := syncDir(dir); err != nil {
			return existed, fmt.Errorf("sync dir: %w", err)
		}
	}
	return existed, nil
}
