package store

import (
	"bytes"
	"testing"
)

// FuzzStoreLoad drives ParseEntry — the full on-disk decode surface:
// header parse, version check, checksum verification and payload decode —
// with arbitrary bytes. The contract is an entry or an error, never a
// panic, and any entry that decodes must satisfy the store's structural
// invariants and survive a re-encode/re-decode round trip unchanged.
func FuzzStoreLoad(f *testing.F) {
	valid, err := encodeEntry(testEntry("drv_probe"), Fingerprint{MaxPaths: 64}.Hash(), Digest{7})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                      // truncated payload
	f.Add(bytes.Replace(valid, []byte("RIDSUM 1 "), []byte("RIDSUM 2 "), 1)) // version skew
	f.Add([]byte("RIDSUM 1\n"))                                      // short header
	f.Add([]byte("not a store entry at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ParseEntry(data)
		if err != nil {
			if e != nil {
				t.Fatal("ParseEntry returned both an entry and an error")
			}
			return
		}
		if e.Fn == "" || e.Summary == nil || e.Summary.Fn != e.Fn {
			t.Fatalf("decoded entry violates invariants: %+v", e)
		}
		for i, r := range e.Reports {
			if r == nil || r.Refcount == nil || r.EntryA == nil || r.EntryB == nil {
				t.Fatalf("decoded report %d is structurally incomplete: %+v", i, r)
			}
		}
		// Round trip: re-encoding the decoded entry and decoding again must
		// be lossless (the canonical bytes are a fixed point).
		re, err := encodeEntry(e, Digest{}, Digest{})
		if err != nil {
			t.Fatalf("re-encode of decoded entry failed: %v", err)
		}
		e2, err := ParseEntry(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if e2.Fn != e.Fn || e2.Paths != e.Paths ||
			len(e2.Reports) != len(e.Reports) || len(e2.Diags) != len(e.Diags) ||
			e2.Summary.String() != e.Summary.String() {
			t.Fatalf("round trip not lossless:\n  %+v\n  %+v", e, e2)
		}
	})
}
