package store_test

import (
	"testing"

	"repro/internal/store"
	"repro/internal/store/storetest"
)

// TestLocalStoreConformance drives the on-disk store through the shared
// backend conformance battery: the same contract and fault injections
// the fleet-store client must satisfy. The local store is strict — a
// corrupt entry is an error, a blocked write is an error.
func TestLocalStoreConformance(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Fingerprint{MaxPaths: 100, MaxSubcases: 10}, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	storetest.Conform(t, storetest.Target{Backend: st, Dir: dir})
}
