// Merkle-style content addressing for function summaries.
//
// A function's analysis outcome (summary, reports, deterministic
// diagnostics) is fully determined by three inputs: the analysis options,
// the function's own IR, and the summaries of its callees — which, for
// defined callees, are in turn determined by the same three inputs over
// their own call cones. The store therefore keys each function by a digest
// computed bottom-up over the SCC condensation of the call graph:
//
//	digest(SCC) = H(format version, options fingerprint,
//	                digests of callee SCCs,
//	                canonical IR of every member (sorted),
//	                name + predefined/db summary of every undefined callee)
//
// All members of an SCC share one combined digest: mutual recursion means
// any member's edit can change every member's summary. Editing a function
// changes its SCC's digest and, transitively, the digest of every SCC that
// can reach it — exactly the cone the edit can affect — while every other
// entry keeps its digest and stays valid.
//
// The canonical IR serialization includes source positions (file, line,
// column) because reports carry them: a body moved to a different line
// must produce a fresh entry or the replayed report would point at the old
// location.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/ir"
	"repro/internal/summary"
)

// FormatVersion is the on-disk format version. Bump it whenever the entry
// encoding, the digest recipe, or the semantics of any analysis stage
// change in a way that makes old entries unsound to replay. Version 2:
// the fingerprint gained the spec digest and reports a resource tag.
const FormatVersion = 2

// Digest is a SHA-256 content address.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// IsZero reports whether d is the zero digest (no digest computed).
func (d Digest) IsZero() bool { return d == Digest{} }

// Fingerprint captures every analysis option that can change a function's
// summary, reports, or deterministic diagnostics. Two runs with equal
// fingerprints and equal per-function digests compute identical outcomes,
// so entries are interchangeable between them. Wall-clock options
// (FuncTimeout), scheduling options (Workers, PathWorkers), and
// memoization toggles (solver cache) are deliberately absent: they cannot
// change results, only how long they take.
type Fingerprint struct {
	MaxPaths             int
	MaxSubcases          int
	NoPrune              bool
	KeepLocalConds       bool
	MaxCat2Conds         int
	AnalyzeAll           bool
	NoBucketing          bool
	SolverMaxConstraints int // normalized: zero never appears here
	SolverMaxSplits      int
	// SpecDigest is the content fingerprint of the run's resource specs
	// (spec.Specs.Fingerprint). Two runs over the same corpus with
	// different spec packs track different resources and must never share
	// summaries, even under the same cache directory.
	SpecDigest string
}

// Hash returns the fingerprint's digest, which seeds every SCC digest and
// is recorded in every entry header.
func (f Fingerprint) Hash() Digest {
	h := sha256.New()
	fmt.Fprintf(h, "rid-fingerprint v%d maxpaths=%d maxsub=%d noprune=%t keeplocals=%t cat2=%d all=%t nobucket=%t maxcons=%d maxsplits=%d spec=%s",
		FormatVersion, f.MaxPaths, f.MaxSubcases, f.NoPrune, f.KeepLocalConds,
		f.MaxCat2Conds, f.AnalyzeAll, f.NoBucketing, f.SolverMaxConstraints, f.SolverMaxSplits, f.SpecDigest)
	var d Digest
	h.Sum(d[:0])
	return d
}

// Digests computes the content digest of every defined function in g,
// bottom-up over the SCC condensation. db supplies the summaries of
// undefined callees (predefined API specs, or summaries carried over from
// earlier multi-file groups); defined callees contribute through their own
// SCC digests instead, so a summary never needs to exist before its digest
// does.
func Digests(g *callgraph.Graph, db *summary.DB, fp Fingerprint) map[string]Digest {
	fph := fp.Hash()
	sccs := g.SCCs()
	sccDigest := make([]Digest, len(sccs))
	for i, members := range sccs {
		h := sha256.New()
		fmt.Fprintf(h, "rid-store v%d\x00", FormatVersion)
		h.Write(fph[:])
		// Callee SCCs precede i in SCCs() order, so their digests exist.
		for _, dep := range g.SCCSuccs(i) {
			h.Write(sccDigest[dep][:])
		}
		for _, m := range members {
			writeCanonFunc(h, g.Prog.Funcs[m])
			for _, callee := range g.All[m] {
				if _, defined := g.Prog.Funcs[callee]; defined {
					continue
				}
				fmt.Fprintf(h, "extern\x00%s\x00", callee)
				if s := db.Get(callee); s != nil {
					fmt.Fprintf(h, "pre=%t def=%t %s", s.Predefined, s.HasDefault, s)
				} else {
					io.WriteString(h, "unknown")
				}
				io.WriteString(h, "\x00")
			}
		}
		h.Sum(sccDigest[i][:0])
	}
	out := make(map[string]Digest, len(g.Nodes))
	for _, fn := range g.Nodes {
		out[fn] = sccDigest[g.SCCOf(fn)]
	}
	return out
}

// writeCanonFunc serializes everything about a function that the analysis
// or its reports can observe: signature, source location, and every
// instruction with its position.
func writeCanonFunc(w io.Writer, f *ir.Func) {
	fmt.Fprintf(w, "func %s(%s) ret=%t conds=%d src=%s @%s:%d:%d\n",
		f.Name, strings.Join(f.Params, ","), f.HasRet, f.NumConds,
		f.SrcFile, f.Pos.File, f.Pos.Line, f.Pos.Column)
	for _, b := range f.Blocks {
		fmt.Fprintf(w, "b%d:\n", b.Index)
		for _, in := range b.Instrs {
			fmt.Fprintf(w, "%s @%s:%d:%d\n", in, in.Pos.File, in.Pos.Line, in.Pos.Column)
		}
	}
}
