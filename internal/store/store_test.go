package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/frontend/token"
	"repro/internal/ipp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/summary"
	"repro/internal/sym"
)

func testFingerprint() Fingerprint {
	return Fingerprint{
		MaxPaths: 100, MaxSubcases: 10, MaxCat2Conds: 3,
		SolverMaxConstraints: 4096, SolverMaxSplits: 12,
	}
}

// testEntry builds a representative entry: a two-entry summary with
// constraints and changes, one report with a witness, and a deterministic
// diagnostic.
func testEntry(fn string) *Entry {
	s := summary.New(fn)
	s.Params = []string{"dev", "flags"}
	e1 := summary.NewEntry(sym.True().And(sym.Cond(sym.Arg("dev"), ir.NE, sym.Null())), sym.Const(0))
	e1.AddChange(sym.Field(sym.Arg("dev"), "pm"), 1)
	e2 := summary.NewEntry(sym.True(), sym.Const(-1))
	s.Entries = append(s.Entries, e1, e2)
	rep := &ipp.Report{
		Fn:       fn,
		SrcFile:  "drivers/gen/file0001.c",
		Pos:      token.Pos{File: "drivers/gen/file0001.c", Line: 42, Column: 5},
		Refcount: sym.Field(sym.Arg("dev"), "pm"),
		EntryA:   e1,
		EntryB:   e2,
		PathA:    0, PathB: 3,
		DeltaA: 1, DeltaB: 0,
		Witness: map[string]int64{"dev": 1, "$ret": 0},
	}
	return &Entry{
		Fn:      fn,
		Summary: s,
		Reports: []*ipp.Report{rep},
		Paths:   7,
		Diags:   []Diag{{Kind: "path-budget", Cause: "path enumeration truncated at MaxPaths=100"}},
	}
}

func openTestStore(t *testing.T, fp Fingerprint) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	st, err := Open(t.TempDir(), fp, obs.New(nil, reg))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, reg
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, reg := openTestStore(t, testFingerprint())
	var d Digest
	d[0] = 0xaa
	e := testEntry("drv_probe")
	if err := st.Save("drv_probe", d, e); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := st.Load("drv_probe", d)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got == nil {
		t.Fatal("Load: miss, want hit")
	}
	if got.Fn != e.Fn || got.Paths != e.Paths {
		t.Errorf("Fn/Paths = %q/%d, want %q/%d", got.Fn, got.Paths, e.Fn, e.Paths)
	}
	if got.Summary.String() != e.Summary.String() {
		t.Errorf("summary round-trip:\ngot:\n%s\nwant:\n%s", got.Summary, e.Summary)
	}
	if len(got.Reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(got.Reports))
	}
	gr, wr := got.Reports[0], e.Reports[0]
	if gr.String() != wr.String() || gr.Detail() != wr.Detail() {
		t.Errorf("report round-trip:\ngot:  %s\nwant: %s", gr, wr)
	}
	if gr.Pos != wr.Pos || gr.SrcFile != wr.SrcFile {
		t.Errorf("position round-trip: got %v %q, want %v %q", gr.Pos, gr.SrcFile, wr.Pos, wr.SrcFile)
	}
	if len(gr.Witness) != 2 || gr.Witness["dev"] != 1 {
		t.Errorf("witness round-trip: %v", gr.Witness)
	}
	// Loaded expressions are rebuilt through the sym constructors, so they
	// are interned: identical to freshly constructed ones.
	if gr.Refcount != sym.Field(sym.Arg("dev"), "pm") {
		t.Errorf("loaded refcount not interned: %p vs %p", gr.Refcount, sym.Field(sym.Arg("dev"), "pm"))
	}
	if len(got.Diags) != 1 || got.Diags[0] != e.Diags[0] {
		t.Errorf("diags round-trip: %v", got.Diags)
	}
	if h, m := reg.Counter(obs.MStoreHits), reg.Counter(obs.MStoreMisses); h != 1 || m != 0 {
		t.Errorf("hits/misses = %d/%d, want 1/0", h, m)
	}
}

func TestLoadMissAbsent(t *testing.T) {
	st, reg := openTestStore(t, testFingerprint())
	e, err := st.Load("nothing", Digest{1})
	if e != nil || err != nil {
		t.Fatalf("Load absent = (%v, %v), want (nil, nil)", e, err)
	}
	if m := reg.Counter(obs.MStoreMisses); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
}

func TestLoadMissStaleDigest(t *testing.T) {
	st, reg := openTestStore(t, testFingerprint())
	if err := st.Save("f", Digest{1}, testEntry("f")); err != nil {
		t.Fatal(err)
	}
	// Different digest (edited function): a silent miss, not an error.
	e, err := st.Load("f", Digest{2})
	if e != nil || err != nil {
		t.Fatalf("Load stale = (%v, %v), want (nil, nil)", e, err)
	}
	if h, m := reg.Counter(obs.MStoreHits), reg.Counter(obs.MStoreMisses); h != 0 || m != 1 {
		t.Errorf("hits/misses = %d/%d, want 0/1", h, m)
	}
}

func TestEvictionOnOverwrite(t *testing.T) {
	st, reg := openTestStore(t, testFingerprint())
	if err := st.Save("f", Digest{1}, testEntry("f")); err != nil {
		t.Fatal(err)
	}
	if ev := reg.Counter(obs.MStoreEvictions); ev != 0 {
		t.Fatalf("evictions after first save = %d, want 0", ev)
	}
	if err := st.Save("f", Digest{2}, testEntry("f")); err != nil {
		t.Fatal(err)
	}
	if ev := reg.Counter(obs.MStoreEvictions); ev != 1 {
		t.Errorf("evictions after overwrite = %d, want 1", ev)
	}
	// The replacement won: the new digest hits, the old misses.
	if e, err := st.Load("f", Digest{2}); e == nil || err != nil {
		t.Errorf("Load new digest = (%v, %v), want hit", e, err)
	}
	if e, err := st.Load("f", Digest{1}); e != nil || err != nil {
		t.Errorf("Load old digest = (%v, %v), want silent miss", e, err)
	}
}

// ---------------------------------------------------------------------------
// Fault injection

// corrupt writes a mutated copy of fn's entry file and returns the store.
func corruptedEntry(t *testing.T, mutate func([]byte) []byte) (*Store, Digest) {
	t.Helper()
	st, _ := openTestStore(t, testFingerprint())
	d := Digest{7}
	if err := st.Save("victim", d, testEntry("victim")); err != nil {
		t.Fatal(err)
	}
	p := st.path("victim")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return st, d
}

// wantInvalid asserts Load classifies the entry as corrupt (error, no
// panic) with an error mentioning want.
func wantInvalid(t *testing.T, st *Store, d Digest, want string) {
	t.Helper()
	e, err := st.Load("victim", d)
	if e != nil {
		t.Fatalf("Load corrupt entry returned an entry: %+v", e)
	}
	if err == nil {
		t.Fatal("Load corrupt entry: no error, want invalid")
	}
	if want != "" && !strings.Contains(err.Error(), want) {
		t.Errorf("error = %q, want mention of %q", err, want)
	}
}

func TestLoadTruncatedFile(t *testing.T) {
	st, d := corruptedEntry(t, func(b []byte) []byte { return b[:len(b)/2] })
	wantInvalid(t, st, d, "")
}

func TestLoadTruncatedHeader(t *testing.T) {
	st, d := corruptedEntry(t, func(b []byte) []byte { return b[:10] })
	wantInvalid(t, st, d, "no header line")
}

func TestLoadEmptyFile(t *testing.T) {
	st, d := corruptedEntry(t, func(b []byte) []byte { return nil })
	wantInvalid(t, st, d, "")
}

func TestLoadFlippedPayloadByte(t *testing.T) {
	st, d := corruptedEntry(t, func(b []byte) []byte {
		b[len(b)-3] ^= 0x40
		return b
	})
	wantInvalid(t, st, d, "checksum")
}

func TestLoadVersionSkew(t *testing.T) {
	st, d := corruptedEntry(t, func(b []byte) []byte {
		cur := fmt.Sprintf("RIDSUM %d ", FormatVersion)
		return []byte(strings.Replace(string(b), cur, "RIDSUM 99 ", 1))
	})
	wantInvalid(t, st, d, "version")
}

func TestLoadFingerprintMismatch(t *testing.T) {
	// Rewrite the header's fingerprint field in place; digest and payload
	// stay valid, so only the fingerprint check can catch it.
	oldFP := testFingerprint().Hash().String()
	newFP := Fingerprint{MaxPaths: 5}.Hash().String()
	st, d := corruptedEntry(t, func(b []byte) []byte {
		return []byte(strings.Replace(string(b), oldFP, newFP, 1))
	})
	wantInvalid(t, st, d, "fingerprint")
}

func TestLoadGarbage(t *testing.T) {
	st, d := corruptedEntry(t, func(b []byte) []byte {
		return []byte("RIDSUM over troubled water\nnot json")
	})
	wantInvalid(t, st, d, "")
}

func TestLoadNameCollision(t *testing.T) {
	// An entry whose header names a different function (as a truncated-hash
	// collision would produce) is treated as absent, not as corruption.
	st, _ := openTestStore(t, testFingerprint())
	d := Digest{9}
	if err := st.Save("actual", d, testEntry("actual")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.path("actual"))
	if err != nil {
		t.Fatal(err)
	}
	p := st.path("imposter")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := st.Load("imposter", d)
	if e != nil || err != nil {
		t.Fatalf("Load collided entry = (%v, %v), want (nil, nil)", e, err)
	}
}

func TestMidWriteCrashLeavesNoEntry(t *testing.T) {
	// Simulate a crash between CreateTemp and Rename: a temp file with a
	// partial payload sits next to the final path. It must never be read
	// as an entry, and a later Save must still land atomically.
	st, _ := openTestStore(t, testFingerprint())
	d := Digest{3}
	p := st.path("f")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	full, err := encodeEntry(testEntry("f"), st.fp, d)
	if err != nil {
		t.Fatal(err)
	}
	tmp := p + ".tmp1234567"
	if err := os.WriteFile(tmp, full[:len(full)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if e, lerr := st.Load("f", d); e != nil || lerr != nil {
		t.Fatalf("Load with only a temp file = (%v, %v), want (nil, nil)", e, lerr)
	}
	if err := st.Save("f", d, testEntry("f")); err != nil {
		t.Fatalf("Save after crash debris: %v", err)
	}
	if e, lerr := st.Load("f", d); e == nil || lerr != nil {
		t.Fatalf("Load after save = (%v, %v), want hit", e, lerr)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("crash debris was touched: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Digests

const digestSrc = `
int leaf(int x) { if (x > 0) return 1; return 0; }
int mid(int x) { return leaf(x); }
int other(int x) { return x + 2; }
int top(struct device *d) {
    pm_runtime_get_sync(d);
    if (mid(1) > 0)
        pm_runtime_put(d);
    return 0;
}
`

func digestsOf(t *testing.T, src string, fp Fingerprint) map[string]Digest {
	t.Helper()
	prog, err := lower.SourceString("dig.c", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	db := summary.NewDB()
	spec.LinuxDPM().ApplyTo(db)
	return Digests(callgraph.Build(prog), db, fp)
}

func TestDigestsDeterministic(t *testing.T) {
	a := digestsOf(t, digestSrc, testFingerprint())
	b := digestsOf(t, digestSrc, testFingerprint())
	if len(a) != 4 {
		t.Fatalf("digests for %d functions, want 4", len(a))
	}
	for fn, d := range a {
		if b[fn] != d {
			t.Errorf("digest of %s differs across identical builds", fn)
		}
	}
}

func TestDigestsInvalidateExactCone(t *testing.T) {
	before := digestsOf(t, digestSrc, testFingerprint())
	edited := strings.Replace(digestSrc, "if (x > 0) return 1;", "if (x > 1) return 1;", 1)
	after := digestsOf(t, edited, testFingerprint())
	// leaf changed; mid and top reach it through calls; other does not.
	for _, fn := range []string{"leaf", "mid", "top"} {
		if before[fn] == after[fn] {
			t.Errorf("digest of %s unchanged after editing leaf (it is in the cone)", fn)
		}
	}
	if before["other"] != after["other"] {
		t.Error("digest of other changed after editing leaf (it is outside the cone)")
	}
}

func TestDigestsSeeLineShifts(t *testing.T) {
	// Inserting a blank line moves every following function's positions.
	// Reports carry positions, so digests must change even though the
	// token stream is identical.
	before := digestsOf(t, digestSrc, testFingerprint())
	after := digestsOf(t, "\n"+digestSrc, testFingerprint())
	if before["leaf"] == after["leaf"] {
		t.Error("digest of leaf unchanged after a line shift; cached reports would keep stale positions")
	}
}

func TestDigestsFoldInFingerprint(t *testing.T) {
	a := digestsOf(t, digestSrc, testFingerprint())
	fp2 := testFingerprint()
	fp2.MaxPaths = 50
	b := digestsOf(t, digestSrc, fp2)
	for fn := range a {
		if a[fn] == b[fn] {
			t.Errorf("digest of %s identical under different options fingerprints", fn)
		}
	}
}

// TestSaveCleansTempOnPublishFailure pins the publish path's failure
// behavior: when the final rename cannot succeed, Save must report an
// error AND remove the staged temp file — orphaned *.tmp* files would
// otherwise accumulate one per failed publish until the cache directory
// fills.
func TestSaveCleansTempOnPublishFailure(t *testing.T) {
	st, _ := openTestStore(t, testFingerprint())
	fn := "drv_probe"
	// Occupy the entry's final path with a non-empty directory so
	// os.Rename must fail (ENOTEMPTY/EEXIST), whatever the platform.
	p := st.path(fn)
	if err := os.MkdirAll(filepath.Join(p, "blocker"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := st.Save(fn, Digest{1}, testEntry(fn))
	if err == nil {
		t.Fatal("Save must fail when the entry cannot be published")
	}
	if !strings.Contains(err.Error(), "publish") {
		t.Errorf("error should identify the publish step: %v", err)
	}
	glob, _ := filepath.Glob(filepath.Join(filepath.Dir(p), "*.tmp*"))
	if len(glob) != 0 {
		t.Fatalf("staged temp files left behind after failed publish: %v", glob)
	}
}

// TestLookupDigestFindsEntry pins the digest-addressed lookup behind
// `rid serve`'s GET /v1/summary/{digest}.
func TestLookupDigestFindsEntry(t *testing.T) {
	st, _ := openTestStore(t, testFingerprint())
	var d Digest
	d[0], d[31] = 0x5e, 0x01
	if err := st.Save("drv_probe", d, testEntry("drv_probe")); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("other_fn", Digest{9}, testEntry("other_fn")); err != nil {
		t.Fatal(err)
	}
	e, err := st.LookupDigest(d)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil || e.Fn != "drv_probe" {
		t.Fatalf("LookupDigest: got %+v, want drv_probe's entry", e)
	}
	if e.Summary == nil || len(e.Reports) != 1 || e.Paths != 7 {
		t.Fatalf("decoded entry incomplete: %+v", e)
	}
	// An unknown digest is an ordinary miss, not an error.
	if e, err := st.LookupDigest(Digest{0xff}); err != nil || e != nil {
		t.Fatalf("unknown digest: got (%v, %v), want (nil, nil)", e, err)
	}
}

// TestLookupDigestSkipsCorrupt: corrupt neighbors must not break a lookup.
func TestLookupDigestSkipsCorrupt(t *testing.T) {
	st, _ := openTestStore(t, testFingerprint())
	var d Digest
	d[0] = 0x77
	if err := st.Save("good_fn", d, testEntry("good_fn")); err != nil {
		t.Fatal(err)
	}
	bad := st.path("bad_fn")
	if err := os.MkdirAll(filepath.Dir(bad), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("not a store entry at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := st.LookupDigest(d)
	if err != nil || e == nil || e.Fn != "good_fn" {
		t.Fatalf("lookup with corrupt neighbor: got (%v, %v)", e, err)
	}
}
