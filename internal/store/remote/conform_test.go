package remote_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/store/remote"
	"repro/internal/store/storetest"
)

// startServer runs a store server on a fresh directory and loopback port,
// torn down with the test.
func startServer(t *testing.T, cfg remote.ServerConfig) (dir, url string) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	srv, err := remote.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // teardown
	})
	return cfg.Dir, "http://" + addr
}

// newTestClient builds a client with test-speed retry/backoff tuning. The
// breaker threshold is high by default so fault tests observe each
// failure directly instead of tripping the circuit; breaker behavior has
// its own test.
func newTestClient(t *testing.T, cfg remote.Config) (*remote.Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	if cfg.Obs == nil {
		cfg.Obs = obs.New(nil, reg)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.FailThreshold == 0 {
		cfg.FailThreshold = 1000
	}
	remote.ResetCircuit(cfg.URL)
	c, err := remote.NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return c, reg
}

// TestRemoteClientConformance drives the fleet-store client through the
// same conformance battery as the local store. The server refuses to
// serve what fails validation, so corrupt entries surface as misses —
// still never as wrong entries.
func TestRemoteClientConformance(t *testing.T) {
	dir, url := startServer(t, remote.ServerConfig{})
	c, _ := newTestClient(t, remote.Config{URL: url})
	storetest.Conform(t, storetest.Target{Backend: c, Dir: dir, LoadErrorsAreMisses: true})
}

// TestRemoteClientConformanceOverProxy re-runs the battery with a
// FlakyProxy in the middle running an empty fault script: the proxy must
// be semantically transparent, or its fault tests prove nothing.
func TestRemoteClientConformanceOverProxy(t *testing.T) {
	dir, url := startServer(t, remote.ServerConfig{})
	p := storetest.NewFlakyProxy(t, url)
	c, _ := newTestClient(t, remote.Config{URL: p.URL()})
	storetest.Conform(t, storetest.Target{Backend: c, Dir: dir, LoadErrorsAreMisses: true})
	if p.Served() == 0 {
		t.Fatal("proxy served no requests; the battery bypassed it")
	}
}

// TestFlakyProxySingleFaultRetried: one transport-level fault per
// operation is absorbed by the client's single retry — the caller never
// sees it.
func TestFlakyProxySingleFaultRetried(t *testing.T) {
	_, url := startServer(t, remote.ServerConfig{})
	p := storetest.NewFlakyProxy(t, url)
	p.StallFor = 300 * time.Millisecond
	c, _ := newTestClient(t, remote.Config{URL: p.URL(), Timeout: 100 * time.Millisecond})

	fn := "flaky_retry"
	d := seedEntry(t, c, fn)
	for _, tc := range []struct {
		name  string
		fault storetest.Fault
	}{
		{"err500", storetest.Err500},
		{"drop-conn", storetest.Drop},
		{"truncate-body", storetest.TruncateBody},
		{"stall-past-deadline", storetest.Stall},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p.Inject(tc.fault)
			e, err := c.Load(fn, d)
			if err != nil {
				t.Fatalf("Load with one %s fault: %v (retry should absorb it)", tc.name, err)
			}
			if e == nil || e.Fn != fn {
				t.Fatalf("Load with one %s fault: got %+v, want hit for %s", tc.name, e, fn)
			}
		})
	}
}

// TestFlakyProxyDoubleFaultSurfaces: two consecutive faults defeat the
// retry, and the strict client reports an honest error — nil entry,
// non-nil err, no panic, no fabricated data.
func TestFlakyProxyDoubleFaultSurfaces(t *testing.T) {
	_, url := startServer(t, remote.ServerConfig{})
	p := storetest.NewFlakyProxy(t, url)
	p.StallFor = 300 * time.Millisecond
	c, _ := newTestClient(t, remote.Config{URL: p.URL(), Timeout: 100 * time.Millisecond})

	fn := "flaky_double"
	d := seedEntry(t, c, fn)
	for _, tc := range []struct {
		name  string
		fault storetest.Fault
	}{
		{"err500", storetest.Err500},
		{"drop-conn", storetest.Drop},
		{"truncate-body", storetest.TruncateBody},
		{"stall-past-deadline", storetest.Stall},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p.Inject(tc.fault, tc.fault)
			e, err := c.Load(fn, d)
			if err == nil {
				t.Fatalf("Load with two %s faults succeeded; the strict client must surface the failure", tc.name)
			}
			if e != nil {
				t.Fatalf("Load with two %s faults returned an entry alongside the error", tc.name)
			}
		})
	}
	// The script is drained: the store is immediately usable again.
	e, err := c.Load(fn, d)
	if err != nil || e == nil {
		t.Fatalf("Load after faults drained = (%v, %v), want hit", e, err)
	}
}

// TestFlakyProxyCorruptBodyIsIntegrityError: a 200 response whose body
// was corrupted in flight is not retried (the exchange succeeded) but is
// caught by client-side validation — an integrity error, never an entry.
func TestFlakyProxyCorruptBodyIsIntegrityError(t *testing.T) {
	_, url := startServer(t, remote.ServerConfig{})
	p := storetest.NewFlakyProxy(t, url)
	c, reg := newTestClient(t, remote.Config{URL: p.URL()})

	fn := "flaky_corrupt"
	d := seedEntry(t, c, fn)
	p.Inject(storetest.CorruptBody)
	e, err := c.Load(fn, d)
	if err == nil || e != nil {
		t.Fatalf("Load of corrupted-in-flight entry = (%v, %v), want integrity error", e, err)
	}
	if n := reg.Counter(obs.MRemoteIntegrity); n == 0 {
		t.Fatal("remote_integrity_errors counter not incremented")
	}
	// Clean wire, same entry: the data on the server was never damaged.
	e, err = c.Load(fn, d)
	if err != nil || e == nil {
		t.Fatalf("Load after corruption cleared = (%v, %v), want hit", e, err)
	}
}

// TestCircuitBreakerOpensAndProbes: consecutive failures open the per-URL
// circuit (refusals cost no network traffic), and after the probe
// interval a single successful probe closes it again.
func TestCircuitBreakerOpensAndProbes(t *testing.T) {
	_, url := startServer(t, remote.ServerConfig{})
	p := storetest.NewFlakyProxy(t, url)
	c, _ := newTestClient(t, remote.Config{
		URL:           p.URL(),
		FailThreshold: 2,
		ProbeWait:     50 * time.Millisecond,
	})

	fn := "breaker_fn"
	d := seedEntry(t, c, fn)
	if got := remote.CircuitState(p.URL()); got != "closed" {
		t.Fatalf("initial circuit state %q, want closed", got)
	}

	// Two failed operations (each fault pair defeats one op's retry).
	p.Inject(storetest.Err500, storetest.Err500, storetest.Err500, storetest.Err500)
	for i := 0; i < 2; i++ {
		if _, err := c.Load(fn, d); err == nil {
			t.Fatalf("Load %d should have failed", i)
		}
	}
	if got := remote.CircuitState(p.URL()); got != "open" {
		t.Fatalf("circuit state after %d failures = %q, want open", 2, got)
	}

	// Open circuit: refused without touching the wire.
	before := p.Served()
	_, err := c.Load(fn, d)
	if !errors.Is(err, remote.ErrCircuitOpen) {
		t.Fatalf("Load with open circuit: %v, want ErrCircuitOpen", err)
	}
	if p.Served() != before {
		t.Fatal("open circuit still sent requests")
	}

	// After the probe interval one operation goes through; success closes.
	time.Sleep(70 * time.Millisecond)
	e, err := c.Load(fn, d)
	if err != nil || e == nil {
		t.Fatalf("probe Load = (%v, %v), want hit", e, err)
	}
	if got := remote.CircuitState(p.URL()); got != "closed" {
		t.Fatalf("circuit state after successful probe = %q, want closed", got)
	}
}

// seedEntry publishes a representative entry for fn through c and returns
// its digest.
func seedEntry(t *testing.T, c *remote.Client, fn string) store.Digest {
	t.Helper()
	var d store.Digest
	copy(d[:], fn)
	if err := c.Save(fn, d, storetest.Entry(fn)); err != nil {
		t.Fatalf("seeding %s: %v", fn, err)
	}
	return d
}
