package remote_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus/kernelgen"
	"repro/internal/frontend/parser"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/store/remote"
	"repro/internal/store/storetest"
)

// testCorpus generates a small randomized driver corpus with every
// pattern class represented.
func testCorpus(seed int64) *kernelgen.Corpus {
	return kernelgen.Generate(kernelgen.Config{
		Seed: seed,
		Mix: kernelgen.Mix{
			CorrectBalanced:   6,
			CorrectErrHandled: 4,
			CorrectWrapperUse: 4,
			CorrectHeld:       3,
			BugGetErrReturn:   5,
			BugWrapperErrPath: 3,
			BugWrapperMisuse:  3,
			BugDoublePut:      2,
			BugIRQStyle:       3,
			BugAsymmetricErr:  3,
			BugLoopErrPath:    2,
			CorrectLoop:       2,
			CorrectSwitch:     2,
			BugDeepWrapper:    2,
			FPBitmask:         4,
		},
		SimpleHelpers:  8,
		ComplexHelpers: 5,
		OtherFuncs:     30,
	})
}

// buildFiles lowers a raw file map (deterministic order) into a program.
func buildFiles(t testing.TB, files map[string]string) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(n, files[n])
		if err != nil {
			t.Fatalf("parse %s: %v", n, err)
		}
		if err := lower.Into(prog, f); err != nil {
			t.Fatalf("lower %s: %v", n, err)
		}
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid IR: %v", err)
	}
	return prog
}

func analyzeFiles(t testing.TB, files map[string]string, cacheDir, cacheURL string, workers int) (*core.Result, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	res := core.Analyze(context.Background(), buildFiles(t, files), spec.LinuxDPM(),
		core.Options{Workers: workers, CacheDir: cacheDir, CacheURL: cacheURL, Obs: obs.New(nil, reg)})
	return res, reg
}

// renderReports flattens the reports (with full detail) for byte
// comparison.
func renderReports(res *core.Result) string {
	var b strings.Builder
	for _, r := range res.ReportsByFunction() {
		b.WriteString(r.String())
		b.WriteByte('\n')
		b.WriteString(r.Detail())
		b.WriteByte('\n')
	}
	return b.String()
}

// renderOutcome adds the diagnostics — the full observable analysis
// outcome.
func renderOutcome(res *core.Result) string {
	var b strings.Builder
	b.WriteString(renderReports(res))
	for _, d := range res.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func hasCacheRemoteDiag(res *core.Result) bool {
	for _, d := range res.Diagnostics {
		if d.Kind == core.DegradeCacheRemote {
			return true
		}
	}
	return false
}

func countEntries(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(filepath.Join(dir, "entries"), func(path string, de os.DirEntry, err error) error { //nolint:errcheck // absent dir = 0 entries
		if err == nil && !de.IsDir() && strings.HasSuffix(path, ".sum") {
			n++
		}
		return nil
	})
	return n
}

// TestRemoteWarmStartDifferential is the fleet-cache analogue of the
// local warm-start oracle: the same corpus analyzed from scratch,
// cold-local, warm-local, cold-through-the-fleet, and warm-from-an-empty
// -local-dir (every hit served over the wire) must produce byte-identical
// reports and diagnostics, at one worker and at four. A final run against
// a store that dies mid-analysis must still produce the same reports —
// degraded to local analysis with a cache-remote diagnostic, never a
// wrong answer.
func TestRemoteWarmStartDifferential(t *testing.T) {
	corpus := testCorpus(71)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			scratch, _ := analyzeFiles(t, corpus.Files, "", "", workers)
			if len(scratch.Reports) == 0 {
				t.Fatal("corpus produced no reports; the oracle is vacuous")
			}
			want := renderOutcome(scratch)

			// Cold and warm against a purely local store.
			localDir := t.TempDir()
			cold, _ := analyzeFiles(t, corpus.Files, localDir, "", workers)
			warmLocal, wlreg := analyzeFiles(t, corpus.Files, localDir, "", workers)
			if got := renderOutcome(cold); got != want {
				t.Errorf("cold-local differs from scratch:\n--- cold ---\n%s--- scratch ---\n%s", got, want)
			}
			if got := renderOutcome(warmLocal); got != want {
				t.Errorf("warm-local differs from scratch:\n--- warm ---\n%s--- scratch ---\n%s", got, want)
			}
			if h := wlreg.Counter(obs.MStoreHits); h == 0 {
				t.Error("warm-local run had no store hits")
			}

			// Cold through the fleet: empty local tier, empty server; the
			// write-behind publishes everything before Analyze returns.
			serverDir, url := startServer(t, remote.ServerConfig{})
			coldRemote, crreg := analyzeFiles(t, corpus.Files, t.TempDir(), url, workers)
			if got := renderOutcome(coldRemote); got != want {
				t.Errorf("cold-remote differs from scratch:\n--- cold-remote ---\n%s--- scratch ---\n%s", got, want)
			}
			if p := crreg.Counter(obs.MRemotePuts); p == 0 {
				t.Error("cold-remote run published nothing to the fleet store")
			}
			if n := countEntries(t, serverDir); n == 0 {
				t.Fatal("server store is empty after the cold-remote run")
			}

			// Warm from the fleet alone: a fresh, empty local dir, so every
			// hit crosses the wire.
			warmRemote, wrreg := analyzeFiles(t, corpus.Files, t.TempDir(), url, workers)
			if got := renderOutcome(warmRemote); got != want {
				t.Errorf("warm-remote differs from scratch:\n--- warm-remote ---\n%s--- scratch ---\n%s", got, want)
			}
			if h := wrreg.Counter(obs.MRemoteHits); h == 0 {
				t.Error("warm-remote run had no remote hits")
			}
			if hasCacheRemoteDiag(warmRemote) {
				t.Error("healthy warm-remote run carries a cache-remote diagnostic")
			}

			// The store dies mid-run (a proxy that severs every connection
			// after the first few requests): reports must match scratch
			// exactly, and the degradation must be surfaced.
			proxy := storetest.NewFlakyProxy(t, url)
			proxy.KillAfter(3)
			killed, _ := analyzeFiles(t, corpus.Files, t.TempDir(), proxy.URL(), workers)
			if got := renderReports(killed); got != renderReports(scratch) {
				t.Errorf("reports after mid-run store death differ from scratch:\n--- killed ---\n%s--- scratch ---\n%s",
					got, renderReports(scratch))
			}
			if !hasCacheRemoteDiag(killed) {
				t.Error("mid-run store death produced no cache-remote diagnostic")
			}
		})
	}
}
