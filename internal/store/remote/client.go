// Package remote makes the persistent summary store fleet-shared: a
// stdlib-only HTTP server (`rid storeserve`) exposes one store directory
// over the wire, and a client backend lets every analysis process — CLI
// runs, benchmarks, `rid serve` replicas — read and publish entries
// through it. Layered behind the local store (see Tiered) it is a warm
// cache for work any machine in the fleet already did.
//
// The wire protocol (DESIGN.md §13) moves raw entry bytes — the same
// checksummed RIDSUM header + JSON payload the local store writes to
// disk — so both ends validate with store.ValidateRaw and a corrupt or
// mislabeled response can never be mistaken for a summary:
//
//	GET  /v1/entry/{name}?d={digest}  fetch one entry by name, expected digest
//	PUT  /v1/entry/{name}             publish one entry (validated server-side)
//	POST /v1/has                      batch existence probe (warm-up priming)
//	GET  /v1/digest/{digest}          fetch by content digest (any name)
//	GET  /healthz                     store gauges, admission gauges
//	GET  /metrics                     Prometheus text exposition
//
// The failure discipline is non-negotiable: a dead, slow, or corrupt
// remote degrades the run to local analysis — never a wrong answer,
// never a hang. Every operation runs under a per-op deadline with one
// retry after a short backoff; consecutive failures open a per-URL
// circuit breaker that refuses further attempts until a probe succeeds.
package remote

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Config tunes a fleet-store client. Only URL is required.
type Config struct {
	// URL is the store server's base address (http:// or https://).
	URL string
	// Timeout caps each HTTP attempt, connect through body (default 2s).
	Timeout time.Duration
	// RetryBackoff is the pause before the single retry (default 100ms).
	RetryBackoff time.Duration
	// FailThreshold is how many consecutive failures open the circuit
	// (default 3).
	FailThreshold int
	// ProbeWait is how long an open circuit refuses before letting one
	// probe through (default 2s).
	ProbeWait time.Duration
	// Fingerprint is the hashed options fingerprint entries are encoded
	// under when the client is used as a full Backend (Save). Lookup-only
	// and tiered use may leave it zero: raw bytes carry their own.
	Fingerprint store.Digest
	// Obs receives remote_* counters; nil observes nothing.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeWait <= 0 {
		c.ProbeWait = 2 * time.Second
	}
	return c
}

// Client talks to one store server. It implements store.Backend with
// strict semantics — a remote failure is returned as an error — so the
// conformance suite can drive it directly; production callers wrap it in
// Tiered, which owns the degrade-to-local policy. Safe for concurrent
// use.
type Client struct {
	cfg  Config
	base string
	hc   *http.Client
	br   *breaker
	o    *obs.Obs
}

var _ store.Backend = (*Client)(nil)

// NewClient validates cfg.URL and returns a client for it. No connection
// is attempted: a store that is down at startup is the same degraded
// state as one that dies mid-run.
func NewClient(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	u, err := url.Parse(cfg.URL)
	if err != nil {
		return nil, fmt.Errorf("cache url: %w", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("cache url %q: want http(s)://host[:port]", cfg.URL)
	}
	return &Client{
		cfg:  cfg,
		base: strings.TrimRight(cfg.URL, "/"),
		hc:   &http.Client{Timeout: cfg.Timeout},
		br:   forURL(cfg.URL, cfg.FailThreshold, cfg.ProbeWait),
		o:    cfg.Obs,
	}, nil
}

// URL returns the configured base address.
func (c *Client) URL() string { return c.cfg.URL }

// call performs one HTTP exchange under the failure discipline: circuit
// check, per-attempt deadline, one retry with backoff on transport
// errors and 5xx/429. Any 2xx or 404 counts as breaker success (the
// server answered); everything else as failure.
func (c *Client) call(method, path string, body []byte) (status int, data []byte, err error) {
	if !c.br.allow() {
		return 0, nil, ErrCircuitOpen
	}
	status, data, err = c.once(method, path, body)
	if err != nil {
		time.Sleep(c.cfg.RetryBackoff)
		status, data, err = c.once(method, path, body)
	}
	if err != nil {
		c.br.failure()
		c.o.Count(obs.MRemoteErrors, 1)
		return 0, nil, err
	}
	c.br.success()
	return status, data, nil
}

// once is a single attempt. Statuses outside {2xx, 404} are errors (the
// body's first line is folded into the message for diagnosability).
func (c *Client) once(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("fleet store %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		return 0, nil, fmt.Errorf("fleet store %s %s: read body: %w", method, path, err)
	}
	if len(data) > maxEntryBytes {
		return 0, nil, fmt.Errorf("fleet store %s %s: body exceeds %d bytes", method, path, maxEntryBytes)
	}
	ok := (resp.StatusCode >= 200 && resp.StatusCode < 300) || resp.StatusCode == http.StatusNotFound
	if !ok {
		line, _, _ := strings.Cut(strings.TrimSpace(string(data)), "\n")
		return 0, nil, fmt.Errorf("fleet store %s %s: status %d: %s", method, path, resp.StatusCode, line)
	}
	return resp.StatusCode, data, nil
}

// GetRaw fetches fn's entry bytes for the expected digest. (nil, nil) is
// a miss. Returned bytes are fully validated — header, checksum, and
// that they are really fn's entry under d; anything else is an integrity
// error, counted and returned.
func (c *Client) GetRaw(fn string, d store.Digest) ([]byte, error) {
	name := store.EntryName(fn)
	status, data, err := c.call(http.MethodGet, "/v1/entry/"+name+"?d="+d.String(), nil)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, nil
	}
	info, err := store.ValidateRaw(data)
	if err != nil {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store entry %s: %w", name, err)
	}
	if info.Fn != fn || info.Digest != d {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store entry %s: response is for %q digest %s, want %q digest %s",
			name, info.Fn, info.Digest.String()[:12], fn, d.String()[:12])
	}
	return data, nil
}

// PutRaw publishes raw entry bytes (validated client-side first — never
// ship garbage, even to a server that would reject it).
func (c *Client) PutRaw(fn string, data []byte) error {
	info, err := store.ValidateRaw(data)
	if err != nil {
		return fmt.Errorf("fleet store put: %w", err)
	}
	if info.Fn != fn {
		return fmt.Errorf("fleet store put: bytes are for %q, want %q", info.Fn, fn)
	}
	status, _, err := c.call(http.MethodPut, "/v1/entry/"+store.EntryName(fn), data)
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		return fmt.Errorf("fleet store put %s: unexpected 404", store.EntryName(fn))
	}
	c.o.Count(obs.MRemotePuts, 1)
	return nil
}

// HasBatch reports which of the named entries the server holds, in input
// order. One round trip for the whole batch — the priming probe that
// lets a tiered backend skip per-miss GETs for entries the fleet has
// never seen.
func (c *Client) HasBatch(names []string) ([]bool, error) {
	body, err := json.Marshal(hasRequest{Names: names})
	if err != nil {
		return nil, err
	}
	status, data, err := c.call(http.MethodPost, "/v1/has", body)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, fmt.Errorf("fleet store has-batch: unexpected 404")
	}
	var resp hasResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store has-batch: bad response: %w", err)
	}
	if len(resp.Has) != len(names) {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store has-batch: %d answers for %d names", len(resp.Has), len(names))
	}
	return resp.Has, nil
}

// GetDigestRaw fetches the raw bytes of any entry published under
// content digest d. (nil, nil) when the server has none.
func (c *Client) GetDigestRaw(d store.Digest) ([]byte, error) {
	status, data, err := c.call(http.MethodGet, "/v1/digest/"+d.String(), nil)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, nil
	}
	info, err := store.ValidateRaw(data)
	if err != nil {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store digest %s: %w", d.String()[:12], err)
	}
	if info.Digest != d {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store digest %s: response carries digest %s",
			d.String()[:12], info.Digest.String()[:12])
	}
	return data, nil
}

// Ping checks the server is answering (GET /healthz).
func (c *Client) Ping() error {
	status, _, err := c.call(http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		return fmt.Errorf("fleet store ping: no /healthz")
	}
	return nil
}

// ---------------------------------------------------------------------------
// store.Backend (strict: remote failures are errors; Tiered is lenient)

// Load implements store.Backend: a validated remote entry, (nil, nil) on
// miss, or an error for remote failure or an untrustworthy response.
func (c *Client) Load(fn string, d store.Digest) (*store.Entry, error) {
	data, err := c.GetRaw(fn, d)
	if err != nil || data == nil {
		if err == nil {
			c.o.Count(obs.MRemoteMisses, 1)
		}
		return nil, err
	}
	e, err := store.ParseEntry(data)
	if err != nil {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store entry %s: %w", store.EntryName(fn), err)
	}
	c.o.Count(obs.MRemoteHits, 1)
	return e, nil
}

// Save implements store.Backend, encoding under the configured
// fingerprint. Production write paths ship raw local bytes via
// Tiered/PutRaw instead; this exists so the client can be driven by the
// same conformance suite as the local store.
func (c *Client) Save(fn string, d store.Digest, e *store.Entry) error {
	data, err := store.EncodeEntry(e, c.cfg.Fingerprint, d)
	if err != nil {
		return fmt.Errorf("fleet store save %s: %w", fn, err)
	}
	return c.PutRaw(fn, data)
}

// LookupDigest implements store.Backend over GET /v1/digest.
func (c *Client) LookupDigest(d store.Digest) (*store.Entry, error) {
	data, err := c.GetDigestRaw(d)
	if err != nil || data == nil {
		return nil, err
	}
	e, err := store.ParseEntry(data)
	if err != nil {
		c.o.Count(obs.MRemoteIntegrity, 1)
		return nil, fmt.Errorf("fleet store digest %s: %w", d.String()[:12], err)
	}
	return e, nil
}

// parseDigestParam decodes a 64-hex-digit digest (the {digest} path
// element and ?d= query parameter).
func parseDigestParam(s string) (store.Digest, error) {
	var d store.Digest
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(d) {
		return d, fmt.Errorf("bad digest %q", s)
	}
	copy(d[:], b)
	return d, nil
}
