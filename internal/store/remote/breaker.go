package remote

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen means the client refused to even try the fleet store:
// recent operations failed consecutively and the circuit is open. Callers
// treat it exactly like any other remote failure — degrade to local — but
// it costs a mutex, not a network timeout, so an unreachable store slows
// each miss by nanoseconds instead of seconds.
var ErrCircuitOpen = errors.New("fleet store circuit open")

// Circuit states, as reported by CircuitState and /healthz.
const (
	stateClosed  = "closed"  // normal operation
	stateOpen    = "open"    // refusing operations, waiting to probe
	stateProbing = "probing" // one trial operation in flight
)

// breaker is a consecutive-failure circuit breaker. Closed until
// threshold consecutive operations fail; then open, refusing everything
// for probeAfter; then a single operation is let through as a probe —
// success closes the circuit, failure re-opens it for another interval.
//
// Breakers are shared per URL (see forURL): `rid serve` builds one tiered
// backend per request, and without sharing each request would rediscover
// a dead store by timing out from scratch.
type breaker struct {
	mu        sync.Mutex
	state     string
	failures  int
	openedAt  time.Time
	threshold int
	probeWait time.Duration

	now func() time.Time // injectable clock for tests
}

func newBreaker(threshold int, probeWait time.Duration) *breaker {
	return &breaker{state: stateClosed, threshold: threshold, probeWait: probeWait, now: time.Now}
}

// allow reports whether an operation may proceed. In the open state, at
// most one caller per probe interval gets true (and moves the breaker to
// probing); everyone else is refused until the probe resolves.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(b.openedAt) >= b.probeWait {
			b.state = stateProbing
			return true
		}
		return false
	default: // probing: the probe slot is taken
		return false
	}
}

// success records a completed operation (any well-formed HTTP exchange,
// including a 404 miss) and closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = stateClosed
	b.failures = 0
	b.mu.Unlock()
}

// failure records a failed operation. A failed probe re-opens
// immediately; in the closed state the circuit opens after threshold
// consecutive failures.
func (b *breaker) failure() {
	b.mu.Lock()
	b.failures++
	if b.state == stateProbing || b.failures >= b.threshold {
		b.state = stateOpen
		b.openedAt = b.now()
	}
	b.mu.Unlock()
}

func (b *breaker) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ---------------------------------------------------------------------------
// Per-URL registry

var breakers = struct {
	mu sync.Mutex
	m  map[string]*breaker
}{m: map[string]*breaker{}}

// forURL returns the process-wide breaker for url, creating it with the
// given tuning on first use (later callers share the existing breaker,
// whatever their tuning — one URL, one health opinion).
func forURL(url string, threshold int, probeWait time.Duration) *breaker {
	breakers.mu.Lock()
	defer breakers.mu.Unlock()
	b, ok := breakers.m[url]
	if !ok {
		b = newBreaker(threshold, probeWait)
		breakers.m[url] = b
	}
	return b
}

// CircuitState reports the breaker state for url — "closed", "open", or
// "probing" — or "" when no client for url exists in this process. It is
// the /healthz surface for fleet-store health.
func CircuitState(url string) string {
	breakers.mu.Lock()
	b := breakers.m[url]
	breakers.mu.Unlock()
	if b == nil {
		return ""
	}
	return b.current()
}

// ResetCircuit discards the breaker for url (tests that reuse an address
// across subtests call it so one test's failures don't leak state).
func ResetCircuit(url string) {
	breakers.mu.Lock()
	delete(breakers.m, url)
	breakers.mu.Unlock()
}
