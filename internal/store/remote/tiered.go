package remote

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/store"
)

// writeBehindDepth bounds the ship-to-fleet queue. When the writer falls
// behind (slow or dead remote) further saves drop their remote copy
// instead of blocking analysis — the local entry is already durable, the
// fleet just stays a bit colder. Drops are counted (DroppedPuts), never
// silent.
const writeBehindDepth = 256

// Tiered layers the fleet store behind a local one as a warm cache:
//
//	Load:   local first; on a local miss, fetch from the fleet, validate,
//	        write through to local, and replay. Any remote failure is a
//	        plain miss — the function is analyzed locally, exactly as if
//	        no fleet store were configured.
//	Save:   local first (authoritative, synchronous); the raw local bytes
//	        are then shipped to the fleet from a bounded write-behind
//	        queue that never blocks analysis.
//	Lookup: local first, then the fleet (see TestSummaryLookupOrder).
//
// This is the lenient half of the remote pairing: Client reports remote
// failures as errors, Tiered converts every one of them into "local
// only" and records the first cause for the run-level cache-remote
// diagnostic (DegradedCause). A dead, slow, or corrupt remote can cost
// warmth, never correctness.
//
// Safe for concurrent use by analysis workers. Close flushes the
// write-behind queue; a Tiered that is never closed (the long-lived
// lookup backend in `rid serve`) keeps its writer goroutine for the
// process lifetime.
type Tiered struct {
	local  *store.Store
	client *Client
	o      *obs.Obs

	primeMu sync.Mutex
	primed  bool
	known   map[string]bool // entry name → fleet had it at prime time

	wbMu      sync.Mutex // serializes enqueue vs close (send on a closed channel panics)
	wbClosed  bool
	wb        chan string
	writerDid sync.WaitGroup

	dropped atomic.Int64

	causeMu sync.Mutex
	cause   string
}

var _ store.Backend = (*Tiered)(nil)

// NewTiered combines a local store with a fleet client and starts the
// write-behind writer. Counters land in the client's observer.
func NewTiered(local *store.Store, client *Client) *Tiered {
	t := &Tiered{
		local:  local,
		client: client,
		o:      client.o,
		wb:     make(chan string, writeBehindDepth),
	}
	t.writerDid.Add(1)
	go t.writer()
	return t
}

// note records the first remote failure as the run's degradation cause.
func (t *Tiered) note(err error) {
	if err == nil {
		return
	}
	t.causeMu.Lock()
	if t.cause == "" {
		t.cause = err.Error()
	}
	t.causeMu.Unlock()
}

// DegradedCause returns the first remote failure seen (""  when the
// fleet store behaved). Core turns it into the run-level cache-remote
// diagnostic.
func (t *Tiered) DegradedCause() string {
	t.causeMu.Lock()
	defer t.causeMu.Unlock()
	return t.cause
}

// DroppedPuts returns how many entries were not shipped because the
// write-behind queue was full.
func (t *Tiered) DroppedPuts() int64 { return t.dropped.Load() }

// Prime probes the fleet for the named functions in batches, so that
// during the run a local miss for a function the fleet has never seen
// skips the remote round trip entirely. Best-effort: a failed probe
// leaves the backend unprimed (every local miss asks the fleet, and the
// circuit breaker bounds the damage if it is down).
func (t *Tiered) Prime(fns []string) {
	names := make([]string, len(fns))
	for i, fn := range fns {
		names[i] = store.EntryName(fn)
	}
	known := make(map[string]bool, len(names))
	for len(names) > 0 {
		chunk := names
		if len(chunk) > maxHasBatch {
			chunk = chunk[:maxHasBatch]
		}
		names = names[len(chunk):]
		has, err := t.client.HasBatch(chunk)
		if err != nil {
			t.note(err)
			return
		}
		for i, name := range chunk {
			known[name] = has[i]
		}
	}
	t.primeMu.Lock()
	t.primed, t.known = true, known
	t.primeMu.Unlock()
}

// skipRemote reports whether priming proved the fleet lacks fn.
func (t *Tiered) skipRemote(name string) bool {
	t.primeMu.Lock()
	defer t.primeMu.Unlock()
	return t.primed && !t.known[name]
}

// Load implements store.Backend. Local errors (an untrustworthy local
// entry) surface unchanged — that is the cache-invalid path and has
// nothing to do with the fleet. Remote failures of any kind are misses.
func (t *Tiered) Load(fn string, d store.Digest) (*store.Entry, error) {
	e, err := t.local.Load(fn, d)
	if e != nil || err != nil {
		return e, err
	}
	name := store.EntryName(fn)
	if t.skipRemote(name) {
		t.o.Count(obs.MRemoteMisses, 1)
		return nil, nil
	}
	data, err := t.client.GetRaw(fn, d)
	if err != nil {
		t.note(err)
		return nil, nil
	}
	if data == nil {
		t.o.Count(obs.MRemoteMisses, 1)
		return nil, nil
	}
	re, err := store.ParseEntry(data)
	if err != nil {
		// Header validated but payload didn't decode: count it against
		// the fleet's integrity, analyze locally.
		t.o.Count(obs.MRemoteIntegrity, 1)
		t.note(err)
		return nil, nil
	}
	// Write through so the next run (and LookupDigest) hit locally.
	// Best-effort: a full local disk degrades to re-fetching, not to
	// failing the load that already succeeded. Non-durable on purpose —
	// the fleet still holds these bytes, so skipping the per-entry fsync
	// (the dominant cost of a warm-over-the-wire run) risks nothing but
	// a re-fetch after a crash.
	if err := t.local.PutRawCached(fn, data); err != nil {
		t.note(err)
	}
	t.o.Count(obs.MRemoteHits, 1)
	return re, nil
}

// Save implements store.Backend: local synchronously (authoritative),
// fleet asynchronously via the bounded write-behind queue.
func (t *Tiered) Save(fn string, d store.Digest, e *store.Entry) error {
	if err := t.local.Save(fn, d, e); err != nil {
		return err
	}
	t.wbMu.Lock()
	if !t.wbClosed {
		select {
		case t.wb <- fn:
		default:
			t.dropped.Add(1)
		}
	}
	t.wbMu.Unlock()
	return nil
}

// LookupDigest implements store.Backend: local first, then the fleet
// (lenient — a remote failure means "not found here").
func (t *Tiered) LookupDigest(d store.Digest) (*store.Entry, error) {
	e, err := t.local.LookupDigest(d)
	if e != nil || err != nil {
		return e, err
	}
	re, err := t.client.LookupDigest(d)
	if err != nil {
		t.note(err)
		return nil, nil
	}
	return re, nil
}

// writer drains the write-behind queue, shipping each entry's raw local
// bytes. Reading back from the local store (rather than re-encoding the
// in-memory entry) guarantees the fleet receives byte-for-byte what the
// local store persisted.
func (t *Tiered) writer() {
	defer t.writerDid.Done()
	for fn := range t.wb {
		data, err := t.local.Raw(fn)
		if err != nil || data == nil {
			continue
		}
		if err := t.client.PutRaw(fn, data); err != nil {
			t.note(err)
		}
	}
}

// Close flushes the write-behind queue and stops the writer. Saves
// arriving after Close skip the fleet copy. Idempotent.
func (t *Tiered) Close() {
	t.wbMu.Lock()
	already := t.wbClosed
	if !already {
		t.wbClosed = true
		close(t.wb)
	}
	t.wbMu.Unlock()
	if !already {
		t.writerDid.Wait()
	}
}
