package remote

// Wire-level constants and JSON bodies shared by client and server.
// Entry bytes themselves travel opaque (application/octet-stream) in the
// store's own self-validating on-disk format; JSON appears only on the
// has-batch probe and /healthz.

// maxEntryBytes caps one entry on the wire (and a server-side read).
// Far above any real summary — a guard against a confused or malicious
// peer streaming unbounded data, not a tuning knob.
const maxEntryBytes = 16 << 20

// maxHasBatch caps names per has-batch probe; clients chunk above it.
const maxHasBatch = 4096

type hasRequest struct {
	Names []string `json:"names"`
}

type hasResponse struct {
	Has []bool `json:"has"`
}
