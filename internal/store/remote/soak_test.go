package remote_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/store/remote"
	"repro/internal/store/storetest"
)

// health mirrors the /healthz fields the soak asserts on.
type health struct {
	Status  string `json:"status"`
	Entries int    `json:"entries"`
	Gets    int64  `json:"gets_total"`
	Puts    int64  `json:"puts_total"`
	BadPuts int64  `json:"bad_puts_total"`
	Corrupt int64  `json:"corrupt_entries_total"`
}

func getHealth(url string) (health, error) {
	var h health
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return h, fmt.Errorf("GET /healthz: %w", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("decode /healthz: %w", err)
	}
	return h, nil
}

// TestSoakConcurrentClients hammers one server with 8 clients sharing a
// 40-function working set: every put is digest-addressed and idempotent
// (the same bytes land many times over), every load after a save must
// hit, and the server's counters only ever move forward. Run under
// -race, this is the data-race oracle for the whole wire path.
func TestSoakConcurrentClients(t *testing.T) {
	_, url := startServer(t, remote.ServerConfig{})
	const (
		clients = 8
		funcs   = 40
		rounds  = 3
	)

	fns := make([]string, funcs)
	names := make([]string, funcs)
	digests := make([]store.Digest, funcs)
	for i := range fns {
		fns[i] = fmt.Sprintf("soak_fn_%03d", i)
		names[i] = store.EntryName(fns[i])
		copy(digests[i][:], fns[i])
	}

	// Monotonicity monitor: counters sampled while the soak runs must
	// never move backward.
	stop := make(chan struct{})
	var monitorDone sync.WaitGroup
	monitorDone.Add(1)
	go func() {
		defer monitorDone.Done()
		var last health
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			h, err := getHealth(url)
			if err != nil {
				t.Error(err)
				return
			}
			if h.Gets < last.Gets || h.Puts < last.Puts || h.Entries < last.Entries {
				t.Errorf("counters moved backward: %+v then %+v", last, h)
				return
			}
			last = h
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		client, _ := newTestClient(t, remote.Config{URL: url})
		wg.Add(1)
		go func(c int, client *remote.Client) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range fns {
					// All clients race to publish the same content; the
					// digest-addressed put must converge, never error.
					if err := client.Save(fns[i], digests[i], storetest.Entry(fns[i])); err != nil {
						t.Errorf("client %d round %d: Save(%s): %v", c, r, fns[i], err)
						return
					}
					e, err := client.Load(fns[i], digests[i])
					if err != nil || e == nil || e.Fn != fns[i] {
						t.Errorf("client %d round %d: Load(%s) = (%v, %v), want hit", c, r, fns[i], e, err)
						return
					}
				}
				has, err := client.HasBatch(names)
				if err != nil {
					t.Errorf("client %d round %d: HasBatch: %v", c, r, err)
					return
				}
				for i, ok := range has {
					if !ok {
						t.Errorf("client %d round %d: HasBatch says %s is absent after saving it", c, r, fns[i])
						return
					}
				}
			}
		}(c, client)
	}
	wg.Wait()
	close(stop)
	monitorDone.Wait()

	h, err := getHealth(url)
	if err != nil {
		t.Fatal(err)
	}
	if h.Entries != funcs {
		t.Errorf("server holds %d entries, want %d (idempotent puts must converge)", h.Entries, funcs)
	}
	if h.BadPuts != 0 || h.Corrupt != 0 {
		t.Errorf("bad_puts=%d corrupt=%d, want 0/0", h.BadPuts, h.Corrupt)
	}
	if want := int64(clients * rounds * funcs); h.Gets < want {
		t.Errorf("gets_total = %d, want at least %d", h.Gets, want)
	}
	if want := int64(clients * rounds * funcs); h.Puts < want {
		t.Errorf("puts_total = %d, want at least %d", h.Puts, want)
	}
}
