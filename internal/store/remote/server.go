package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/obs/promtext"
	"repro/internal/store"
)

// ServerConfig tunes `rid storeserve`. Only Dir is required.
type ServerConfig struct {
	// Dir is the store directory to serve (created if absent). It is an
	// ordinary summary store: a server can be pointed at a directory a
	// local run already warmed, and vice versa.
	Dir string
	// MaxInflight bounds concurrently served store operations (default 32
	// — operations are short I/O, not analyses).
	MaxInflight int
	// QueueDepth bounds operations waiting for a slot (default
	// 4*MaxInflight); beyond it 429.
	QueueDepth int
	// QueueWait bounds how long a queued operation waits (default 1s).
	QueueWait time.Duration
	// FailEvery, when positive, makes every Nth /v1 request fail with 500
	// before touching the store — deterministic fault injection for
	// degradation drills (CI runs a ridbench against a storeserve
	// -fail-every 3 and asserts a clean exit with cache-remote
	// diagnostics).
	FailEvery int
	// Log receives one line per request; nil logs nothing.
	Log *log.Logger
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 32
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	return c
}

// Server is one fleet store server. Create with NewServer, expose with
// Handler or Start, stop with Shutdown.
type Server struct {
	cfg  ServerConfig
	st   *store.Store
	gate *admit.Gate
	mux  *http.ServeMux

	reqs      atomic.Int64 // all /v1 requests admitted (fail-every counts off this)
	gets      atomic.Int64 // entry/digest fetches answered 200
	misses    atomic.Int64 // fetches answered 404
	puts      atomic.Int64 // entries accepted
	rejected  atomic.Int64 // invalid puts refused (400)
	corrupt   atomic.Int64 // on-disk entries that failed validation when served
	injected  atomic.Int64 // fail-every 500s served
	hasProbes atomic.Int64 // has-batch names answered

	srv      *http.Server
	listener net.Listener
}

// NewServer opens (or creates) the store directory and builds the
// server.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("storeserve: store directory required")
	}
	// Zero fingerprint: the server never encodes entries, it moves raw
	// bytes that carry their own fingerprint in the validated header.
	st, err := store.Open(cfg.Dir, store.Fingerprint{}, nil)
	if err != nil {
		return nil, fmt.Errorf("storeserve: %w", err)
	}
	s := &Server{cfg: cfg, st: st}
	s.gate = admit.New(cfg.MaxInflight, cfg.QueueDepth, cfg.QueueWait, nil)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/entry/{name}", s.guard(s.handleGet))
	mux.HandleFunc("PUT /v1/entry/{name}", s.guard(s.handlePut))
	mux.HandleFunc("POST /v1/has", s.guard(s.handleHas))
	mux.HandleFunc("GET /v1/digest/{digest}", s.guard(s.handleDigest))
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the server's full HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (port 0 picks a free one) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("storeserve: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln) //nolint:errcheck // Shutdown returns ErrServerClosed here
	return ln.Addr().String(), nil
}

// Shutdown stops accepting connections and drains in-flight requests up
// to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close() //nolint:errcheck // the Shutdown error is the one to report
		return err
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// guard wraps a /v1 handler with admission control and the fail-every
// fault injector. Injection happens after admission and before the store
// is touched, so an injected failure is indistinguishable on the wire
// from a genuine server-side error — which is the point.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, _, err := s.gate.Admit(r.Context())
		if err != nil {
			w.Header().Set("Retry-After", fmt.Sprint(s.gate.RetryAfter()))
			http.Error(w, "storeserve: overloaded", http.StatusTooManyRequests)
			return
		}
		defer release()
		n := s.reqs.Add(1)
		if s.cfg.FailEvery > 0 && n%int64(s.cfg.FailEvery) == 0 {
			s.injected.Add(1)
			s.logf("storeserve: injecting failure on request %d", n)
			http.Error(w, "storeserve: injected failure", http.StatusInternalServerError)
			return
		}
		h(w, r)
	}
}

// handleGet serves one entry's raw bytes by name. The served bytes are
// validated first — a corrupt on-disk file is reported as 404 (plus a
// corrupt-entry counter), never shipped: the client would reject it
// anyway, but an integrity error on the client marks the *server*
// untrustworthy, and a single bad file should not do that.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		http.Error(w, "bad entry name", http.StatusBadRequest)
		return
	}
	data, err := os.ReadFile(store.EntryPath(s.cfg.Dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			http.Error(w, "no entry", http.StatusNotFound)
			return
		}
		http.Error(w, "read entry: "+err.Error(), http.StatusInternalServerError)
		return
	}
	info, err := store.ValidateRaw(data)
	if err != nil {
		s.corrupt.Add(1)
		s.logf("storeserve: corrupt entry %s: %v", name, err)
		http.Error(w, "no entry", http.StatusNotFound)
		return
	}
	if want := r.URL.Query().Get("d"); want != "" {
		d, err := parseDigestParam(want)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if info.Digest != d {
			// Ordinary staleness: the fleet holds an entry for this
			// function computed from different content or options.
			s.misses.Add(1)
			http.Error(w, "no entry", http.StatusNotFound)
			return
		}
	}
	s.gets.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // client disconnects are its problem
}

// handlePut accepts one entry's raw bytes, validates them end to end,
// and publishes atomically. Puts are digest-addressed and idempotent:
// concurrent puts of the same content converge through the same
// temp+rename dance the local store uses.
func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		http.Error(w, "bad entry name", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes+1))
	if err != nil {
		s.rejected.Add(1)
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > maxEntryBytes {
		s.rejected.Add(1)
		http.Error(w, fmt.Sprintf("entry exceeds %d bytes", maxEntryBytes), http.StatusBadRequest)
		return
	}
	info, err := store.ValidateRaw(data)
	if err != nil {
		s.rejected.Add(1)
		http.Error(w, "invalid entry: "+err.Error(), http.StatusBadRequest)
		return
	}
	if store.EntryName(info.Fn) != name {
		s.rejected.Add(1)
		http.Error(w, fmt.Sprintf("entry is for %q, which is not named %s", info.Fn, name), http.StatusBadRequest)
		return
	}
	if err := s.st.PutRaw(info.Fn, data); err != nil {
		http.Error(w, "store entry: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.puts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleHas answers a batch existence probe with one stat per name — no
// validation, no reads: a false positive just costs the client one GET
// that validates for real.
func (s *Server) handleHas(w http.ResponseWriter, r *http.Request) {
	var req hasRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Names) > maxHasBatch {
		http.Error(w, fmt.Sprintf("batch exceeds %d names", maxHasBatch), http.StatusBadRequest)
		return
	}
	resp := hasResponse{Has: make([]bool, len(req.Names))}
	for i, name := range req.Names {
		if !validName(name) {
			continue
		}
		_, err := os.Stat(store.EntryPath(s.cfg.Dir, name))
		resp.Has[i] = err == nil
	}
	s.hasProbes.Add(int64(len(req.Names)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client disconnects are its problem
}

// handleDigest serves the raw bytes of any entry published under the
// given content digest — the fleet-side half of `rid serve`'s
// /v1/summary lookups. A linear scan, like store.LookupDigest: digest
// lookup is a debugging/API convenience, not the analysis hot path.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	d, err := parseDigestParam(r.PathValue("digest"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var found []byte
	root := filepath.Join(s.cfg.Dir, "entries")
	err = filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
		if err != nil || found != nil || de.IsDir() || !strings.HasSuffix(path, ".sum") {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil
		}
		info, verr := store.ValidateRaw(data)
		if verr != nil || info.Digest != d {
			return nil
		}
		found = data
		return filepath.SkipAll
	})
	if err != nil {
		http.Error(w, "scan entries: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if found == nil {
		s.misses.Add(1)
		http.Error(w, "no entry", http.StatusNotFound)
		return
	}
	s.gets.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(found) //nolint:errcheck // client disconnects are its problem
}

// storeHealth is the GET /healthz body. The schema is append-only.
type storeHealth struct {
	Status    string `json:"status"`
	Dir       string `json:"dir"`
	Entries   int    `json:"entries"`
	Inflight  int    `json:"inflight"`
	Queued    int64  `json:"queued"`
	Rejected  int64  `json:"rejected_total"`
	Gets      int64  `json:"gets_total"`
	Misses    int64  `json:"misses_total"`
	Puts      int64  `json:"puts_total"`
	BadPuts   int64  `json:"bad_puts_total"`
	Corrupt   int64  `json:"corrupt_entries_total"`
	Injected  int64  `json:"injected_failures_total"`
	HasProbes int64  `json:"has_probes_total"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	n := 0
	filepath.WalkDir(filepath.Join(s.cfg.Dir, "entries"), func(path string, de os.DirEntry, err error) error { //nolint:errcheck // count what's countable
		if err == nil && !de.IsDir() && strings.HasSuffix(path, ".sum") {
			n++
		}
		return nil
	})
	h := storeHealth{
		Status:    "ok",
		Dir:       s.cfg.Dir,
		Entries:   n,
		Inflight:  s.gate.Inflight(),
		Queued:    s.gate.Queued(),
		Rejected:  s.gate.Rejected(),
		Gets:      s.gets.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		BadPuts:   s.rejected.Load(),
		Corrupt:   s.corrupt.Load(),
		Injected:  s.injected.Load(),
		HasProbes: s.hasProbes.Load(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h) //nolint:errcheck // client disconnects are its problem
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := promtext.NewWriter(w)
	emit := func(name, help string, v int64) {
		pw.Family(name, "counter", help)
		pw.Int(name, nil, v)
	}
	emit("rid_storeserve_gets_total", "entry and digest fetches answered 200", s.gets.Load())
	emit("rid_storeserve_misses_total", "fetches answered 404", s.misses.Load())
	emit("rid_storeserve_puts_total", "entries accepted", s.puts.Load())
	emit("rid_storeserve_bad_puts_total", "invalid puts refused", s.rejected.Load())
	emit("rid_storeserve_corrupt_entries_total", "on-disk entries that failed validation when served", s.corrupt.Load())
	emit("rid_storeserve_injected_failures_total", "fail-every 500s served", s.injected.Load())
	emit("rid_storeserve_admission_rejected_total", "operations refused with 429", s.gate.Rejected())
	pw.Family("rid_storeserve_inflight", "gauge", "operations currently running")
	pw.Int("rid_storeserve_inflight", nil, int64(s.gate.Inflight()))
	pw.Flush() //nolint:errcheck // client disconnects are its problem
}

// validName reports whether name is a well-formed entry name (24 hex
// digits) — everything else 400s before touching the filesystem, which
// also rules out path traversal through the {name} element.
func validName(name string) bool {
	if len(name) != 24 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
