package storetest

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// Fault is one scripted misbehavior a FlakyProxy applies to a request.
type Fault int

const (
	// Pass forwards the request untouched.
	Pass Fault = iota
	// Drop severs the connection without writing a response.
	Drop
	// Err500 answers 500 without forwarding.
	Err500
	// TruncateBody forwards the request but sends only half the response
	// body (with the full Content-Length, so the cut is visible).
	TruncateBody
	// CorruptBody forwards the request but flips a byte in the response
	// body.
	CorruptBody
	// Stall sleeps StallFor before forwarding, to trip client deadlines.
	Stall
)

// FlakyProxy is a deterministic misbehaving reverse proxy for a summary
// store server. Faults are scripted per request in FIFO order — no
// randomness, so a test controls exactly which attempt (first try or
// retry) sees which failure. When the script is empty, requests pass
// through untouched.
type FlakyProxy struct {
	target string
	srv    *httptest.Server

	// StallFor is how long a Stall fault sleeps; set it above the client's
	// per-attempt timeout.
	StallFor time.Duration

	mu        sync.Mutex
	script    []Fault
	served    int
	killAfter int
}

// NewFlakyProxy starts a proxy in front of the store server at target
// (e.g. srv.Addr() as a URL) and tears it down with the test.
func NewFlakyProxy(t *testing.T, target string) *FlakyProxy {
	t.Helper()
	p := &FlakyProxy{target: target, StallFor: 500 * time.Millisecond}
	p.srv = httptest.NewUnstartedServer(http.HandlerFunc(p.serve))
	// No keep-alives: a request that dies on a reused connection is
	// retried transparently inside Go's transport, which would let one
	// Drop consume several scripted faults. Fresh connections make every
	// fault hit exactly one client attempt.
	p.srv.Config.SetKeepAlivesEnabled(false)
	p.srv.Start()
	t.Cleanup(p.srv.Close)
	return p
}

// URL is the address clients should dial.
func (p *FlakyProxy) URL() string { return p.srv.URL }

// Inject appends faults to the script; each consumes one request. The
// client retries a failed call once, so defeating one logical operation
// takes two consecutive faults.
func (p *FlakyProxy) Inject(faults ...Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.script = append(p.script, faults...)
}

// Served reports how many requests the proxy has handled.
func (p *FlakyProxy) Served() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.served
}

// KillAfter makes the store appear to die mid-run: after n more requests
// have been served, every subsequent request severs its connection. This
// is the deterministic stand-in for `kill -9` on the store server.
func (p *FlakyProxy) KillAfter(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killAfter = p.served + n
}

// next pops the next scripted fault (Pass when the script is empty).
func (p *FlakyProxy) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.served++
	if p.killAfter > 0 && p.served > p.killAfter {
		return Drop
	}
	if len(p.script) == 0 {
		return Pass
	}
	f := p.script[0]
	p.script = p.script[1:]
	return f
}

func (p *FlakyProxy) serve(w http.ResponseWriter, r *http.Request) {
	fault := p.next()
	switch fault {
	case Drop:
		panic(http.ErrAbortHandler)
	case Err500:
		http.Error(w, "flaky proxy: injected failure", http.StatusInternalServerError)
		return
	case Stall:
		time.Sleep(p.StallFor)
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, "flaky proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		http.Error(w, "flaky proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close() //nolint:errcheck
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	switch fault {
	case TruncateBody:
		// Keep the upstream Content-Length but send half the bytes: the
		// client sees a short read, not a clean small response.
		w.WriteHeader(resp.StatusCode)
		if len(out) > 0 {
			w.Write(out[:len(out)/2]) //nolint:errcheck
		}
		// Flush so the client really receives headers plus a partial body;
		// unflushed, the abort would look like a pre-response drop instead
		// of a mid-body truncation.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	case CorruptBody:
		if len(out) > 2 {
			out[len(out)/2] ^= 0x20
		}
		w.Header().Del("Content-Length")
		w.WriteHeader(resp.StatusCode)
		w.Write(out) //nolint:errcheck
	default:
		w.WriteHeader(resp.StatusCode)
		w.Write(out) //nolint:errcheck
	}
}
