// Package storetest is the conformance suite for summary-store backends:
// one battery of contract-and-fault-injection tests that every
// store.Backend implementation — the local disk store, the fleet-store
// client, the client talking through a misbehaving proxy — must pass.
// The battery encodes the contract store.Backend documents: three-outcome
// Load, idempotent digest-addressed Save, global LookupDigest, and above
// all that no injected fault (torn write, truncated body, checksum flip,
// concurrent put race, failed disk write) ever produces a wrong entry or
// a panic — only hits, misses, and honest errors.
package storetest

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/frontend/token"
	"repro/internal/ipp"
	"repro/internal/ir"
	"repro/internal/store"
	"repro/internal/summary"
	"repro/internal/sym"
)

// Target is one backend under conformance test.
type Target struct {
	// Backend is the implementation under test.
	Backend store.Backend
	// Dir is the authoritative entries root — the directory whose files
	// back the Backend's entries (the store directory itself, or the
	// server's directory for a wire backend). Fault injection edits files
	// under it directly, simulating torn writes and bit rot beneath the
	// implementation.
	Dir string
	// LoadErrorsAreMisses relaxes the corrupt-entry outcome: a wire
	// backend may report an untrustworthy entry as a plain miss (the
	// server refuses to serve what fails validation) where the local
	// store returns an error. Both are within contract; returning a
	// decoded entry from corrupt bytes never is.
	LoadErrorsAreMisses bool
	// SaveErrorsMayBeSilent relaxes the blocked-write outcome: a lenient
	// tiered backend absorbs remote write failures by design. Strict
	// backends (local store, plain client) must surface them.
	SaveErrorsMayBeSilent bool
}

// Entry builds a representative entry for fn: a two-entry summary with
// constraints and refcount changes, one report with a witness, and a
// deterministic diagnostic — every payload shape the wire and disk
// formats must round-trip.
func Entry(fn string) *store.Entry {
	s := summary.New(fn)
	s.Params = []string{"dev", "flags"}
	e1 := summary.NewEntry(sym.True().And(sym.Cond(sym.Arg("dev"), ir.NE, sym.Null())), sym.Const(0))
	e1.AddChange(sym.Field(sym.Arg("dev"), "pm"), 1)
	e2 := summary.NewEntry(sym.True(), sym.Const(-1))
	s.Entries = append(s.Entries, e1, e2)
	rep := &ipp.Report{
		Fn:       fn,
		SrcFile:  "drivers/gen/file0001.c",
		Pos:      token.Pos{File: "drivers/gen/file0001.c", Line: 42, Column: 5},
		Refcount: sym.Field(sym.Arg("dev"), "pm"),
		EntryA:   e1,
		EntryB:   e2,
		PathA:    0, PathB: 3,
		DeltaA: 1, DeltaB: 0,
		Witness: map[string]int64{"dev": 1, "$ret": 0},
	}
	return &store.Entry{
		Fn:      fn,
		Summary: s,
		Reports: []*ipp.Report{rep},
		Paths:   7,
		Diags:   []store.Diag{{Kind: "path-budget", Cause: "path enumeration truncated at MaxPaths=100"}},
	}
}

// digestFor derives a deterministic per-function digest for test entries.
func digestFor(fn string) store.Digest {
	var d store.Digest
	copy(d[:], fn)
	d[len(d)-1] = 0x5a
	return d
}

// entryFile is where fn's entry lives under the target's authoritative
// directory.
func entryFile(tgt Target, fn string) string {
	return store.EntryPath(tgt.Dir, store.EntryName(fn))
}

// mutateEntry rewrites fn's backing file through mutate — the fault
// injector. The write bypasses the backend entirely, as bit rot does.
func mutateEntry(t *testing.T, tgt Target, fn string, mutate func([]byte) []byte) {
	t.Helper()
	path := entryFile(tgt, fn)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s for fault injection: %v", path, err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatalf("injecting fault into %s: %v", path, err)
	}
}

// saved stores fn's entry through the backend and fails the test on
// error.
func saved(t *testing.T, tgt Target, fn string) store.Digest {
	t.Helper()
	d := digestFor(fn)
	if err := tgt.Backend.Save(fn, d, Entry(fn)); err != nil {
		t.Fatalf("Save(%s): %v", fn, err)
	}
	return d
}

// wantCorrupt asserts the Load outcome for a corrupted entry: an error,
// or — for LoadErrorsAreMisses targets — a miss. Never a hit.
func wantCorrupt(t *testing.T, tgt Target, fn string, d store.Digest, what string) {
	t.Helper()
	e, err := tgt.Backend.Load(fn, d)
	if e != nil {
		t.Fatalf("%s: Load returned an entry from corrupted bytes", what)
	}
	if err == nil && !tgt.LoadErrorsAreMisses {
		t.Fatalf("%s: Load returned (nil, nil); strict backends must report the corruption", what)
	}
}

// Conform runs the full conformance battery against tgt. Each subtest
// uses its own function names, so one Target serves the whole battery.
func Conform(t *testing.T, tgt Target) {
	t.Run("roundtrip", func(t *testing.T) {
		fn := "conform_roundtrip"
		d := saved(t, tgt, fn)
		got, err := tgt.Backend.Load(fn, d)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if got == nil {
			t.Fatal("Load: miss, want hit")
		}
		want := Entry(fn)
		if got.Fn != want.Fn || got.Paths != want.Paths {
			t.Errorf("Fn/Paths = %q/%d, want %q/%d", got.Fn, got.Paths, want.Fn, want.Paths)
		}
		if got.Summary.String() != want.Summary.String() {
			t.Errorf("summary round-trip:\ngot:\n%s\nwant:\n%s", got.Summary, want.Summary)
		}
		if len(got.Reports) != 1 || got.Reports[0].Detail() != want.Reports[0].Detail() {
			t.Errorf("report round-trip mismatch")
		}
		if len(got.Diags) != 1 || got.Diags[0] != want.Diags[0] {
			t.Errorf("diags round-trip: %v", got.Diags)
		}
	})

	t.Run("miss-absent", func(t *testing.T) {
		e, err := tgt.Backend.Load("conform_never_saved", digestFor("conform_never_saved"))
		if e != nil || err != nil {
			t.Fatalf("Load(absent) = (%v, %v), want (nil, nil)", e, err)
		}
	})

	t.Run("miss-stale-digest", func(t *testing.T) {
		fn := "conform_stale"
		saved(t, tgt, fn)
		other := digestFor(fn)
		other[0] ^= 0xff
		e, err := tgt.Backend.Load(fn, other)
		if e != nil || err != nil {
			t.Fatalf("Load(stale digest) = (%v, %v), want silent miss", e, err)
		}
	})

	t.Run("lookup-digest", func(t *testing.T) {
		fn := "conform_lookup"
		d := saved(t, tgt, fn)
		e, err := tgt.Backend.LookupDigest(d)
		if err != nil {
			t.Fatalf("LookupDigest: %v", err)
		}
		if e == nil || e.Fn != fn {
			t.Fatalf("LookupDigest: got %+v, want entry for %s", e, fn)
		}
		var unknown store.Digest
		unknown[0] = 0xee
		e, err = tgt.Backend.LookupDigest(unknown)
		if e != nil || err != nil {
			t.Fatalf("LookupDigest(unknown) = (%v, %v), want (nil, nil)", e, err)
		}
	})

	t.Run("idempotent-resave", func(t *testing.T) {
		fn := "conform_resave"
		d := saved(t, tgt, fn)
		if err := tgt.Backend.Save(fn, d, Entry(fn)); err != nil {
			t.Fatalf("second Save: %v", err)
		}
		e, err := tgt.Backend.Load(fn, d)
		if err != nil || e == nil {
			t.Fatalf("Load after resave = (%v, %v), want hit", e, err)
		}
	})

	t.Run("concurrent-put-race", func(t *testing.T) {
		// Same content from many writers must converge to one valid entry
		// (digest-addressed puts are idempotent); distinct functions must
		// not interfere.
		const writers = 8
		fn := "conform_race_same"
		d := digestFor(fn)
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = tgt.Backend.Save(fn, d, Entry(fn))
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("racing Save %d: %v", i, err)
			}
		}
		e, err := tgt.Backend.Load(fn, d)
		if err != nil || e == nil {
			t.Fatalf("Load after racing saves = (%v, %v), want hit", e, err)
		}
		var dwg sync.WaitGroup
		for i := 0; i < writers; i++ {
			dwg.Add(1)
			go func(i int) {
				defer dwg.Done()
				dfn := fmt.Sprintf("conform_race_distinct_%d", i)
				if err := tgt.Backend.Save(dfn, digestFor(dfn), Entry(dfn)); err != nil {
					t.Errorf("distinct Save %s: %v", dfn, err)
				}
			}(i)
		}
		dwg.Wait()
		for i := 0; i < writers; i++ {
			dfn := fmt.Sprintf("conform_race_distinct_%d", i)
			e, err := tgt.Backend.Load(dfn, digestFor(dfn))
			if err != nil || e == nil || e.Fn != dfn {
				t.Fatalf("Load(%s) after concurrent distinct saves = (%v, %v)", dfn, e, err)
			}
		}
	})

	t.Run("truncated-body", func(t *testing.T) {
		fn := "conform_truncated"
		d := saved(t, tgt, fn)
		mutateEntry(t, tgt, fn, func(b []byte) []byte { return b[:len(b)/2] })
		wantCorrupt(t, tgt, fn, d, "truncated body")
	})

	t.Run("checksum-flip", func(t *testing.T) {
		fn := "conform_bitflip"
		d := saved(t, tgt, fn)
		mutateEntry(t, tgt, fn, func(b []byte) []byte {
			b[len(b)-3] ^= 0x40 // flip a payload bit; the header checksum must catch it
			return b
		})
		wantCorrupt(t, tgt, fn, d, "checksum flip")
	})

	t.Run("torn-header", func(t *testing.T) {
		fn := "conform_torn"
		d := saved(t, tgt, fn)
		mutateEntry(t, tgt, fn, func(b []byte) []byte { return b[:10] })
		wantCorrupt(t, tgt, fn, d, "torn header")
	})

	t.Run("garbage-file", func(t *testing.T) {
		fn := "conform_garbage"
		d := saved(t, tgt, fn)
		mutateEntry(t, tgt, fn, func(b []byte) []byte {
			for i := range b {
				b[i] = byte(i*131 + 7)
			}
			return b
		})
		wantCorrupt(t, tgt, fn, d, "garbage bytes")
	})

	t.Run("empty-file", func(t *testing.T) {
		fn := "conform_empty"
		d := saved(t, tgt, fn)
		mutateEntry(t, tgt, fn, func([]byte) []byte { return nil })
		wantCorrupt(t, tgt, fn, d, "empty file")
	})

	t.Run("write-blocked", func(t *testing.T) {
		// The ENOSPC analogue that works under root (file permissions do
		// not): occupy the entry's fan-out directory with a regular file,
		// so the implementation's MkdirAll fails with ENOTDIR. A strict
		// backend must surface the failed write as an error — and the
		// failure must not poison later writes once space returns.
		fn, block := blockableFn(t, tgt)
		if err := os.WriteFile(block, []byte("disk full stand-in"), 0o644); err != nil {
			t.Fatalf("blocking %s: %v", block, err)
		}
		err := tgt.Backend.Save(fn, digestFor(fn), Entry(fn))
		if err == nil && !tgt.SaveErrorsMayBeSilent {
			t.Fatalf("Save with blocked directory succeeded; want an error")
		}
		if err := os.Remove(block); err != nil {
			t.Fatalf("unblocking: %v", err)
		}
		if err := tgt.Backend.Save(fn, digestFor(fn), Entry(fn)); err != nil {
			t.Fatalf("Save after unblocking: %v", err)
		}
		e, lerr := tgt.Backend.Load(fn, digestFor(fn))
		if lerr != nil || e == nil {
			t.Fatalf("Load after recovery = (%v, %v), want hit", e, lerr)
		}
	})
}

// blockableFn finds a function name whose fan-out directory does not
// exist yet under tgt.Dir (so a regular file can take its place) and
// returns the name plus the directory path to occupy.
func blockableFn(t *testing.T, tgt Target) (fn, blockPath string) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		fn = fmt.Sprintf("conform_blocked_%d", i)
		dir := filepath.Dir(entryFile(tgt, fn))
		if _, err := os.Stat(dir); os.IsNotExist(err) {
			return fn, dir
		}
	}
	t.Fatal("no unused fan-out directory found")
	return "", ""
}
