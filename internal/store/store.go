// Package store persists function analysis results between runs as a
// disk-backed, content-addressed cache. See digest.go for the keying
// scheme. The on-disk layout is one file per function:
//
//	<dir>/entries/<hh>/<fnhash>.sum
//
// where fnhash is the first 24 hex digits of SHA-256(function name) and hh
// its first two digits (a fan-out level so no directory grows unbounded).
// A function has at most one entry — saving over a stale one replaces it
// (the store is self-evicting; replaced writes count as evictions).
//
// Each file is a one-line text header followed by a JSON payload:
//
//	RIDSUM <version> <fingerprint> <digest> <payload-sha256> <len> <fn>\n
//	{...}
//
// The header alone decides whether the payload is worth reading: a digest
// mismatch is ordinary staleness (silent miss, the entry will be
// overwritten), while a bad magic, version skew, fingerprint mismatch, or
// checksum failure means the file cannot be trusted and the caller should
// fall back to cold analysis with a cache-invalid diagnostic.
//
// Writes are atomic: the entry is staged in a temp file in the same
// directory and published with os.Rename, so a crash mid-write leaves at
// worst an ignored *.tmp* file, never a partial entry.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/frontend/token"
	"repro/internal/ipp"
	"repro/internal/obs"
	"repro/internal/summary"
)

const magic = "RIDSUM"

// Diag is one deterministic degradation diagnostic attached to an entry.
// Kind uses the string form of core's DegradeKind (the core package owns
// the enum; the store only transports it). Nondeterministic outcomes —
// timeouts, panics, cancellation — are never stored, so every kind that
// appears here reproduces on a cold run with the same options.
type Diag struct {
	Kind  string `json:"kind"`
	Cause string `json:"cause,omitempty"`
}

// Entry is everything one function's analysis produced: its summary, its
// bug reports, the number of enumerated paths, and any deterministic
// degradation diagnostics. Provenance evidence is deliberately absent —
// `rid explain` always re-analyzes (see DESIGN.md).
type Entry struct {
	Fn      string
	Summary *summary.Summary
	Reports []*ipp.Report
	Paths   int
	Diags   []Diag
}

// Store is an open cache directory bound to one options fingerprint.
// Methods are safe for concurrent use by multiple analysis workers:
// distinct functions touch distinct files, and same-function races resolve
// through atomic renames of identical content.
type Store struct {
	dir string
	fp  Digest
	o   *obs.Obs
}

// Open prepares dir (creating it if needed) for entries under fingerprint
// fp. The observer records hit/miss/eviction counters and cacheio spans;
// nil observes nothing.
func Open(dir string, fp Fingerprint, o *obs.Obs) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "entries"), 0o755); err != nil {
		return nil, fmt.Errorf("open summary store: %w", err)
	}
	return &Store{dir: dir, fp: fp.Hash(), o: o}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(fn string) string {
	return EntryPath(s.dir, EntryName(fn))
}

// Load looks up fn's entry and returns it if its digest matches d.
// The three outcomes mirror the caller's three behaviors:
//
//	(e, nil)     — hit: replay e instead of analyzing.
//	(nil, nil)   — miss (no entry, or a stale digest): analyze cold, save.
//	(nil, err)   — invalid entry: analyze cold, emit a cache-invalid
//	               diagnostic carrying err.
func (s *Store) Load(fn string, d Digest) (*Entry, error) {
	sp := s.o.Start(obs.PhaseCacheIO, fn)
	defer sp.End()
	data, err := os.ReadFile(s.path(fn))
	if err != nil {
		if os.IsNotExist(err) {
			s.o.Count(obs.MStoreMisses, 1)
			return nil, nil
		}
		s.o.Count(obs.MStoreMisses, 1)
		return nil, fmt.Errorf("read entry: %w", err)
	}
	hdr, payload, err := parseHeader(data)
	if err != nil {
		s.o.Count(obs.MStoreMisses, 1)
		return nil, err
	}
	if hdr.digest != d {
		// Ordinary staleness: the function (or its cone, or the options)
		// changed since the entry was written. Silent miss.
		s.o.Count(obs.MStoreMisses, 1)
		return nil, nil
	}
	if hdr.fp != s.fp {
		// The digest folds the fingerprint in, so digest-equal entries
		// must be fingerprint-equal; disagreement means the header was
		// tampered with or corrupted in a way the digest check missed.
		s.o.Count(obs.MStoreMisses, 1)
		return nil, fmt.Errorf("entry fingerprint mismatch (have %s, want %s)",
			hdr.fp.String()[:12], s.fp.String()[:12])
	}
	if hdr.fn != fn {
		// A path collision (truncated name hash); treat as absent.
		s.o.Count(obs.MStoreMisses, 1)
		return nil, nil
	}
	e, err := decodePayload(hdr, payload)
	if err != nil {
		s.o.Count(obs.MStoreMisses, 1)
		return nil, err
	}
	s.o.Count(obs.MStoreHits, 1)
	return e, nil
}

// Save writes fn's entry under digest d, atomically replacing any previous
// entry for fn (counted as an eviction when one existed).
func (s *Store) Save(fn string, d Digest, e *Entry) error {
	sp := s.o.Start(obs.PhaseCacheIO, fn)
	defer sp.End()
	data, err := encodeEntry(e, s.fp, d)
	if err != nil {
		return fmt.Errorf("encode entry %s: %w", fn, err)
	}
	// writeAtomic does the temp+fsync+rename+dir-fsync dance; any error
	// surfaces as a cache-invalid diagnostic in core and the run proceeds
	// without the store.
	existed, err := writeAtomic(s.path(fn), data, true)
	if err != nil {
		return fmt.Errorf("save entry %s: %w", fn, err)
	}
	if existed {
		s.o.Count(obs.MStoreEvictions, 1)
	}
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LookupDigest scans the store for an entry published under content
// digest d (any function name) and decodes it on a match. It is the
// lookup behind `rid serve`'s GET /v1/summary/{digest}: content digests
// are global names, so a client holding one can fetch the corresponding
// summary without knowing which function produced it. Returns (nil, nil)
// when no entry carries d. Unreadable or corrupt files are skipped — they
// are Load's problem, reported on the analysis path.
func (s *Store) LookupDigest(d Digest) (*Entry, error) {
	sp := s.o.Start(obs.PhaseCacheIO, "")
	defer sp.End()
	var found *Entry
	root := filepath.Join(s.dir, "entries")
	err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
		if err != nil || found != nil || de.IsDir() || !strings.HasSuffix(path, ".sum") {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil
		}
		// No fingerprint comparison here: the digest folds the fingerprint
		// in (see digest.go), so digest equality already implies the entry
		// was computed under the options the digest names. This lets a
		// lookup-only Store (opened with a zero fingerprint, as `rid
		// serve` does) resolve digests written by analysis runs.
		hdr, payload, perr := parseHeader(data)
		if perr != nil || hdr.digest != d {
			return nil
		}
		e, derr := decodePayload(hdr, payload)
		if derr != nil {
			return nil
		}
		found = e
		return filepath.SkipAll
	})
	if err != nil {
		return nil, fmt.Errorf("lookup digest: %w", err)
	}
	return found, nil
}

// ---------------------------------------------------------------------------
// Encoding

type header struct {
	version int
	fp      Digest
	digest  Digest
	sum     Digest // payload checksum
	length  int
	fn      string
}

// parseHeader splits data into a validated header and its checksummed
// payload. It must never panic, whatever the bytes: it is the surface
// FuzzStoreLoad drives.
func parseHeader(data []byte) (header, []byte, error) {
	var h header
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return h, nil, fmt.Errorf("truncated entry: no header line")
	}
	line, payload := string(data[:nl]), data[nl+1:]
	fields := strings.SplitN(line, " ", 7)
	if len(fields) != 7 || fields[0] != magic {
		return h, nil, fmt.Errorf("not a summary store entry")
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil {
		return h, nil, fmt.Errorf("bad version %q", fields[1])
	}
	h.version = v
	if v != FormatVersion {
		return h, nil, fmt.Errorf("entry format version %d, this build reads %d", v, FormatVersion)
	}
	if err := parseDigest(fields[2], &h.fp); err != nil {
		return h, nil, fmt.Errorf("bad fingerprint: %w", err)
	}
	if err := parseDigest(fields[3], &h.digest); err != nil {
		return h, nil, fmt.Errorf("bad digest: %w", err)
	}
	if err := parseDigest(fields[4], &h.sum); err != nil {
		return h, nil, fmt.Errorf("bad checksum: %w", err)
	}
	h.length, err = strconv.Atoi(fields[5])
	if err != nil || h.length < 0 {
		return h, nil, fmt.Errorf("bad payload length %q", fields[5])
	}
	h.fn, err = strconv.Unquote(fields[6])
	if err != nil {
		return h, nil, fmt.Errorf("bad function name %q", fields[6])
	}
	if len(payload) != h.length {
		return h, nil, fmt.Errorf("payload is %d bytes, header says %d", len(payload), h.length)
	}
	if sha256.Sum256(payload) != [sha256.Size]byte(h.sum) {
		return h, nil, fmt.Errorf("payload checksum mismatch")
	}
	return h, payload, nil
}

func parseDigest(s string, d *Digest) error {
	b, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	if len(b) != sha256.Size {
		return fmt.Errorf("digest is %d bytes, want %d", len(b), sha256.Size)
	}
	copy(d[:], b)
	return nil
}

// ParseEntry decodes raw file bytes into an entry with full validation
// (header shape, version, checksum, payload structure) but no expectations
// about which function or digest it should be for. It is the fuzz surface:
// arbitrary bytes must yield an entry or an error, never a panic.
func ParseEntry(data []byte) (*Entry, error) {
	hdr, payload, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	return decodePayload(hdr, payload)
}

// The payload wire format. Summaries and expressions reuse the structural
// JSON of summary.DB.Save, so decoding rebuilds them through the sym
// constructors and every loaded expression is re-interned.

type posJSON struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

type reportJSON struct {
	Fn       string           `json:"fn"`
	SrcFile  string           `json:"src_file,omitempty"`
	Pos      posJSON          `json:"pos"`
	Refcount json.RawMessage  `json:"refcount"`
	Resource string           `json:"resource,omitempty"`
	EntryA   json.RawMessage  `json:"entry_a"`
	EntryB   json.RawMessage  `json:"entry_b"`
	PathA    int              `json:"path_a"`
	PathB    int              `json:"path_b"`
	DeltaA   int              `json:"delta_a"`
	DeltaB   int              `json:"delta_b"`
	Witness  map[string]int64 `json:"witness,omitempty"`
}

type entryJSON struct {
	Fn      string          `json:"fn"`
	Summary json.RawMessage `json:"summary"`
	Reports []reportJSON    `json:"reports,omitempty"`
	Paths   int             `json:"paths"`
	Diags   []Diag          `json:"diags,omitempty"`
}

func encodeEntry(e *Entry, fp, d Digest) ([]byte, error) {
	ej := entryJSON{Fn: e.Fn, Paths: e.Paths, Diags: e.Diags}
	var err error
	if ej.Summary, err = summary.MarshalSummary(e.Summary); err != nil {
		return nil, err
	}
	for _, r := range e.Reports {
		rj := reportJSON{
			Fn:       r.Fn,
			SrcFile:  r.SrcFile,
			Pos:      posJSON{File: r.Pos.File, Line: r.Pos.Line, Col: r.Pos.Column},
			Resource: r.Resource,
			PathA:    r.PathA, PathB: r.PathB,
			DeltaA: r.DeltaA, DeltaB: r.DeltaB,
			Witness: r.Witness,
		}
		if rj.Refcount, err = summary.MarshalExpr(r.Refcount); err != nil {
			return nil, err
		}
		if rj.EntryA, err = summary.MarshalEntry(r.EntryA); err != nil {
			return nil, err
		}
		if rj.EntryB, err = summary.MarshalEntry(r.EntryB); err != nil {
			return nil, err
		}
		ej.Reports = append(ej.Reports, rj)
	}
	payload, err := json.Marshal(&ej)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	hdr := fmt.Sprintf("%s %d %s %s %s %d %s\n", magic, FormatVersion,
		fp, d, hex.EncodeToString(sum[:]), len(payload), strconv.Quote(e.Fn))
	return append([]byte(hdr), payload...), nil
}

func decodePayload(hdr header, payload []byte) (*Entry, error) {
	var ej entryJSON
	if err := json.Unmarshal(payload, &ej); err != nil {
		return nil, fmt.Errorf("decode entry payload: %w", err)
	}
	if ej.Fn != hdr.fn {
		return nil, fmt.Errorf("payload is for %q, header says %q", ej.Fn, hdr.fn)
	}
	if len(ej.Summary) == 0 || string(ej.Summary) == "null" {
		return nil, fmt.Errorf("entry for %q has no summary", ej.Fn)
	}
	sum, err := summary.UnmarshalSummary(ej.Summary)
	if err != nil {
		return nil, fmt.Errorf("decode summary: %w", err)
	}
	if sum.Fn != ej.Fn {
		return nil, fmt.Errorf("summary is for %q, entry says %q", sum.Fn, ej.Fn)
	}
	e := &Entry{Fn: ej.Fn, Summary: sum, Paths: ej.Paths, Diags: ej.Diags}
	for i, rj := range ej.Reports {
		r := &ipp.Report{
			Fn:       rj.Fn,
			SrcFile:  rj.SrcFile,
			Pos:      token.Pos{File: rj.Pos.File, Line: rj.Pos.Line, Column: rj.Pos.Col},
			Resource: rj.Resource,
			PathA:    rj.PathA, PathB: rj.PathB,
			DeltaA: rj.DeltaA, DeltaB: rj.DeltaB,
			Witness: rj.Witness,
		}
		if r.Refcount, err = summary.UnmarshalExpr(rj.Refcount); err != nil {
			return nil, fmt.Errorf("report %d refcount: %w", i, err)
		}
		if r.Refcount == nil {
			return nil, fmt.Errorf("report %d has no refcount", i)
		}
		if r.EntryA, err = unmarshalReportEntry(rj.EntryA); err != nil {
			return nil, fmt.Errorf("report %d entry A: %w", i, err)
		}
		if r.EntryB, err = unmarshalReportEntry(rj.EntryB); err != nil {
			return nil, fmt.Errorf("report %d entry B: %w", i, err)
		}
		e.Reports = append(e.Reports, r)
	}
	return e, nil
}

func unmarshalReportEntry(data json.RawMessage) (*summary.Entry, error) {
	if len(data) == 0 || string(data) == "null" {
		return nil, fmt.Errorf("missing")
	}
	return summary.UnmarshalEntry(data)
}
