# Developer entry points. Everything is plain `go` — no external tools.

GO ?= go

.PHONY: all build test race fuzz-smoke spec-suite bench bench-sweep bench-all serve-bench vet fmt cover examples experiments clean

all: build vet test

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Short fuzzing pass over the five fuzz targets; CI runs the same budget.
fuzz-smoke:
	$(GO) test ./internal/frontend/lexer -fuzz=FuzzLexer -fuzztime=20s
	$(GO) test ./internal/frontend/parser -fuzz=FuzzParser -fuzztime=20s
	$(GO) test ./internal/solver -fuzz=FuzzSolver -fuzztime=20s
	$(GO) test ./internal/store -fuzz=FuzzStoreLoad -fuzztime=20s
	$(GO) test ./internal/spec -fuzz=FuzzSpecParser -fuzztime=20s

# The spec-pack quality suite: detection matrices and cache differentials
# on the lock/fd corpora, plus the precision/recall gates (recall 1.0,
# precision >= 0.9) enforced through ridbench.
spec-suite:
	$(GO) test -count=1 ./internal/spec/ ./internal/corpus/lockgen/ ./internal/corpus/fdgen/ ./internal/experiments/ -run 'Spec|Pack|Detection|StaticCovers|Cache|Generate'
	$(GO) run ./cmd/ridbench -packs -min-precision 0.9 -min-recall 1

# §6.5 scaling benches with allocation stats; raw go-test JSON lands in
# bench.out.json (scratch) for before/after comparisons.
bench:
	$(GO) test -run '^$$' -bench 'Section65' -benchmem -json . | tee bench.out.json

# Regenerate the checked-in §6.5 worker-sweep trajectory point. The numbers
# are machine-dependent; refresh on a quiet multi-core box.
bench-sweep:
	$(GO) run ./cmd/ridbench -perf -workers 1,2,4,8 -perf-json BENCH_section65.json

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the checked-in `rid serve` saturation snapshot: ridload boots
# the daemon in-process and sweeps concurrent-client levels against it.
# Machine-dependent like the other BENCH files; refresh on a quiet box.
serve-bench:
	$(GO) run ./cmd/ridload -clients 1,2,4,8 -n 16 -scale 1 -json BENCH_serve.json

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/linuxdpm
	$(GO) run ./examples/pythonc
	$(GO) run ./examples/wrappers
	$(GO) run ./examples/incremental

# Regenerate every table and statistic of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ridbench -all

clean:
	$(GO) clean ./...
