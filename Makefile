# Developer entry points. Everything is plain `go` — no external tools.

GO ?= go

.PHONY: all build test race bench vet fmt cover examples experiments clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/summary/ ./internal/symexec/

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/linuxdpm
	$(GO) run ./examples/pythonc
	$(GO) run ./examples/wrappers
	$(GO) run ./examples/incremental

# Regenerate every table and statistic of the paper's evaluation.
experiments:
	$(GO) run ./cmd/ridbench -all

clean:
	$(GO) clean ./...
