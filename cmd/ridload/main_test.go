package main

import "testing"

func TestParseLevels(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "1,2,4", want: []int{1, 2, 4}},
		{in: " 8 , 16 ", want: []int{8, 16}},
		{in: "3", want: []int{3}},
		{in: "1,,2", want: []int{1, 2}},
		{in: "", wantErr: true},
		{in: "0", wantErr: true},
		{in: "-2", wantErr: true},
		{in: "two", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseLevels(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseLevels(%q): expected error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseLevels(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseLevels(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseLevels(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}
