// Command ridload is the load generator and saturation benchmark for the
// `rid serve` daemon. It sweeps concurrent-client levels against a
// daemon — an external one (-serve-url) or one it boots in-process on a
// loopback port — and reports p50/p99 latency and throughput per level,
// optionally snapshotted as JSON (BENCH_serve.json).
//
//	ridload -clients 1,2,4 -n 20 -scale 1           # self-hosted sweep
//	ridload -serve-url http://host:8080 -clients 8  # drive a live daemon
//	ridload -json BENCH_serve.json                  # save the sweep
//	ridload -p99-max 30s                            # CI latency gate
//	ridload -warm-check -warm-min-speedup 2         # daemon residency gate
//	ridload -scrape -json BENCH_serve.json          # + /metrics curves
//	ridload -check-promtext dump.prom               # validate an exposition
//
// With -scrape, each level is bracketed by /metrics scrapes (every
// scrape is validated against the text-format parser) and polled while
// it runs: peak queue depth and inflight, plus memoization and summary-
// store hit-ratio deltas, land in the sweep table and BENCH_serve.json,
// and the daemon's analyze-request counter must match the requests the
// generator sent. A level where every request fails exits non-zero with
// the first error, instead of reporting a zeros row.
//
// Sweep requests carry no_cache so every request pays for real analysis;
// -warm-check instead measures the memoized path: the same corpus twice,
// asserting the second response is served from the daemon's warm state at
// least -warm-min-speedup times faster.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs/promtext"
	"repro/internal/serve"
)

func main() {
	var (
		serveURL    = flag.String("serve-url", "", "base URL of a running daemon; empty boots one in-process on a loopback port")
		clientsFlag = flag.String("clients", "1,2,4", "comma list of concurrent-client levels to sweep")
		n           = flag.Int("n", 12, "requests per level")
		scale       = flag.Int("scale", 1, "corpus scale factor (the §6.5 kernel corpus shape)")
		seed        = flag.Int64("seed", 317, "corpus seed")
		workers     = flag.Int("workers", 1, "analysis workers requested per analyze call")
		jsonOut     = flag.String("json", "", "write the sweep to this file as JSON")
		p99Max      = flag.Duration("p99-max", 0, "exit non-zero if any level's p99 exceeds this (0 = no gate)")
		warmCheck   = flag.Bool("warm-check", false, "measure cold-vs-warm on the memoized path instead of sweeping")
		warmMin     = flag.Float64("warm-min-speedup", 0, "with -warm-check: exit non-zero unless warm beats cold by this factor")
		maxInflight = flag.Int("max-inflight", 4, "self-hosted daemon: concurrent analysis slots")
		timeout     = flag.Duration("timeout", 5*time.Minute, "per-request client timeout")
		scrape      = flag.Bool("scrape", false, "poll /metrics during the sweep: validate the exposition, fold queue-depth and hit-ratio curves into the sweep, and assert the daemon's analyze counter matches requests sent")
		scrapeEvery = flag.Duration("scrape-interval", 100*time.Millisecond, "with -scrape: polling interval")
		checkProm   = flag.String("check-promtext", "", "validate a saved Prometheus text exposition file (- for stdin) and exit")
	)
	flag.Parse()

	if *checkProm != "" {
		runCheckPromtext(*checkProm)
		return
	}

	levels, err := parseLevels(*clientsFlag)
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	base := *serveURL
	if base == "" {
		srv, err := serve.New(serve.Config{
			MaxInflight:    *maxInflight,
			QueueDepth:     4096,
			QueueWait:      *timeout,
			RequestTimeout: *timeout,
		})
		check(err)
		addr, err := srv.Start("127.0.0.1:0")
		check(err)
		base = "http://" + addr
		fmt.Fprintf(os.Stderr, "ridload: self-hosted daemon on %s (max-inflight=%d)\n", base, *maxInflight)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "ridload: daemon shutdown: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	corpus := experiments.ServeCorpus(*scale, *seed)
	body := func(noCache bool) []byte {
		b, err := json.Marshal(&serve.AnalyzeRequest{
			Files: corpus, Workers: *workers, NoCache: noCache,
		})
		check(err)
		return b
	}

	if *warmCheck {
		runWarmCheck(ctx, base, body(false), *timeout, *warmMin)
		return
	}

	sweepBody := body(true)
	// One untimed warmup request so every level measures a hot daemon
	// (interner, solver cache, resident corpus state), not process start.
	first, _, err := serve.AnalyzeOnce(ctx, base, sweepBody, *timeout)
	check(err)
	sweep := &experiments.ServeSweep{
		Corpus: fmt.Sprintf("kernelgen scale=%d seed=%d", *scale, *seed),
		Funcs:  first.FuncsTotal,
	}
	var scraper *serve.Scraper
	var before serve.ScrapeSnapshot
	if *scrape {
		scraper = serve.NewScraper(base, *timeout)
		fams, err := scraper.Scrape(ctx)
		check(err)
		before = serve.Snapshot(fams)
	}
	for _, c := range levels {
		var stopPoll func() (serve.PollStats, error)
		if scraper != nil {
			stopPoll = scraper.Poll(ctx, *scrapeEvery)
		}
		pt, err := serve.RunLoad(ctx, serve.LoadConfig{
			BaseURL: base, Body: sweepBody, Clients: c, Requests: *n, Timeout: *timeout,
		})
		check(err)
		if stopPoll != nil {
			st, perr := stopPoll()
			check(perr)
			fams, err := scraper.Scrape(ctx)
			check(err)
			after := serve.Snapshot(fams)
			foldScrape(&pt, st, before, after)
			// The daemon's own request accounting must agree with ours:
			// every request we sent (OK or 429) reached route=analyze.
			// Transport errors may never have arrived, so the assertion
			// only holds on error-free levels.
			if pt.Errors == 0 {
				if got, want := after.AnalyzeRequests-before.AnalyzeRequests, int64(pt.Requests); got != want {
					check(fmt.Errorf("scrape: daemon counted %d analyze requests at clients=%d, load generator sent %d", got, pt.Clients, want))
				}
			}
			before = after
		}
		// A level where nothing succeeded is a failed run, not a data
		// point: fail loudly with the first error instead of printing a
		// zeros row and exiting 0.
		if pt.OK == 0 {
			diag := pt.FirstError
			if diag == "" && pt.Rejected > 0 {
				diag = fmt.Sprintf("all %d requests rejected 429 (queue too small for this level?)", pt.Rejected)
			}
			check(fmt.Errorf("clients=%d: all %d requests failed: %s", pt.Clients, pt.Requests, diag))
		}
		sweep.Points = append(sweep.Points, pt)
	}
	fmt.Print(experiments.FormatServeSweep(sweep))
	if t := experiments.FormatServeScrape(sweep); t != "" {
		fmt.Print(t)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		check(err)
		check(experiments.WriteServeSweep(f, sweep))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "ridload: sweep written to %s\n", *jsonOut)
	}
	if *p99Max > 0 {
		lim := float64(p99Max.Microseconds()) / 1000
		for _, pt := range sweep.Points {
			if pt.OK == 0 {
				check(fmt.Errorf("latency gate: no successful requests at clients=%d", pt.Clients))
			}
			if pt.P99MS > lim {
				check(fmt.Errorf("latency gate: clients=%d p99 %.1fms exceeds %v", pt.Clients, pt.P99MS, *p99Max))
			}
		}
		fmt.Fprintf(os.Stderr, "ridload: latency gate passed: every level's p99 <= %v\n", *p99Max)
	}
}

// runWarmCheck measures the daemon's residency win: the same corpus
// twice on the memoized path. The second response must come from the
// daemon's warm state (cached) with an identical report.
func runWarmCheck(ctx context.Context, base string, body []byte, timeout time.Duration, minSpeedup float64) {
	cold, coldDur, err := serve.AnalyzeOnce(ctx, base, body, timeout)
	check(err)
	warm, warmDur, err := serve.AnalyzeOnce(ctx, base, body, timeout)
	check(err)
	if warm.Report != cold.Report {
		check(fmt.Errorf("warm-check: second response report differs from the first"))
	}
	if !warm.Cached {
		check(fmt.Errorf("warm-check: second identical request was not served from the daemon's warm state"))
	}
	speedup := float64(coldDur) / float64(warmDur)
	fmt.Printf("warm-check: cold=%v warm=%v speedup=%.1fx cached=%t bugs=%d\n",
		coldDur.Round(time.Millisecond), warmDur.Round(time.Millisecond), speedup, warm.Cached, warm.Bugs)
	if minSpeedup > 0 && speedup < minSpeedup {
		check(fmt.Errorf("warm-check: speedup %.2fx is below the required %.2fx", speedup, minSpeedup))
	}
}

// foldScrape merges one level's polling stats and before/after scrape
// snapshots into its sweep point.
func foldScrape(pt *experiments.ServePoint, st serve.PollStats, before, after serve.ScrapeSnapshot) {
	pt.ScrapeSamples = st.Samples
	pt.QueueMax = st.MaxQueued
	pt.InflightMax = st.MaxInflight
	if dh, dm := after.MemoHits-before.MemoHits, after.MemoMisses-before.MemoMisses; dh+dm > 0 {
		pt.MemoHitRatio = float64(dh) / float64(dh+dm)
	}
	if dh, dm := after.StoreHits-before.StoreHits, after.StoreMisses-before.StoreMisses; dh+dm > 0 {
		pt.StoreHitRatio = float64(dh) / float64(dh+dm)
	}
}

// runCheckPromtext validates one saved exposition (CI keeps before/after
// scrapes as artifacts and gates on their well-formedness).
func runCheckPromtext(path string) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		check(err)
		defer f.Close()
		r = f
	}
	fams, err := promtext.Parse(r)
	check(err)
	fmt.Printf("promtext OK: %d families\n", len(fams))
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients value %q (want a comma list of positive counts)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -clients list")
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ridload: %v\n", err)
		os.Exit(1)
	}
}
