// Command ridload is the load generator and saturation benchmark for the
// `rid serve` daemon. It sweeps concurrent-client levels against a
// daemon — an external one (-serve-url) or one it boots in-process on a
// loopback port — and reports p50/p99 latency and throughput per level,
// optionally snapshotted as JSON (BENCH_serve.json).
//
//	ridload -clients 1,2,4 -n 20 -scale 1           # self-hosted sweep
//	ridload -serve-url http://host:8080 -clients 8  # drive a live daemon
//	ridload -json BENCH_serve.json                  # save the sweep
//	ridload -p99-max 30s                            # CI latency gate
//	ridload -warm-check -warm-min-speedup 2         # daemon residency gate
//
// Sweep requests carry no_cache so every request pays for real analysis;
// -warm-check instead measures the memoized path: the same corpus twice,
// asserting the second response is served from the daemon's warm state at
// least -warm-min-speedup times faster.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	var (
		serveURL    = flag.String("serve-url", "", "base URL of a running daemon; empty boots one in-process on a loopback port")
		clientsFlag = flag.String("clients", "1,2,4", "comma list of concurrent-client levels to sweep")
		n           = flag.Int("n", 12, "requests per level")
		scale       = flag.Int("scale", 1, "corpus scale factor (the §6.5 kernel corpus shape)")
		seed        = flag.Int64("seed", 317, "corpus seed")
		workers     = flag.Int("workers", 1, "analysis workers requested per analyze call")
		jsonOut     = flag.String("json", "", "write the sweep to this file as JSON")
		p99Max      = flag.Duration("p99-max", 0, "exit non-zero if any level's p99 exceeds this (0 = no gate)")
		warmCheck   = flag.Bool("warm-check", false, "measure cold-vs-warm on the memoized path instead of sweeping")
		warmMin     = flag.Float64("warm-min-speedup", 0, "with -warm-check: exit non-zero unless warm beats cold by this factor")
		maxInflight = flag.Int("max-inflight", 4, "self-hosted daemon: concurrent analysis slots")
		timeout     = flag.Duration("timeout", 5*time.Minute, "per-request client timeout")
	)
	flag.Parse()

	levels, err := parseLevels(*clientsFlag)
	check(err)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	base := *serveURL
	if base == "" {
		srv, err := serve.New(serve.Config{
			MaxInflight:    *maxInflight,
			QueueDepth:     4096,
			QueueWait:      *timeout,
			RequestTimeout: *timeout,
		})
		check(err)
		addr, err := srv.Start("127.0.0.1:0")
		check(err)
		base = "http://" + addr
		fmt.Fprintf(os.Stderr, "ridload: self-hosted daemon on %s (max-inflight=%d)\n", base, *maxInflight)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintf(os.Stderr, "ridload: daemon shutdown: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	corpus := experiments.ServeCorpus(*scale, *seed)
	body := func(noCache bool) []byte {
		b, err := json.Marshal(&serve.AnalyzeRequest{
			Files: corpus, Workers: *workers, NoCache: noCache,
		})
		check(err)
		return b
	}

	if *warmCheck {
		runWarmCheck(ctx, base, body(false), *timeout, *warmMin)
		return
	}

	sweepBody := body(true)
	// One untimed warmup request so every level measures a hot daemon
	// (interner, solver cache, resident corpus state), not process start.
	first, _, err := serve.AnalyzeOnce(ctx, base, sweepBody, *timeout)
	check(err)
	sweep := &experiments.ServeSweep{
		Corpus: fmt.Sprintf("kernelgen scale=%d seed=%d", *scale, *seed),
		Funcs:  first.FuncsTotal,
	}
	for _, c := range levels {
		pt, err := serve.RunLoad(ctx, serve.LoadConfig{
			BaseURL: base, Body: sweepBody, Clients: c, Requests: *n, Timeout: *timeout,
		})
		check(err)
		sweep.Points = append(sweep.Points, pt)
	}
	fmt.Print(experiments.FormatServeSweep(sweep))

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		check(err)
		check(experiments.WriteServeSweep(f, sweep))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "ridload: sweep written to %s\n", *jsonOut)
	}
	if *p99Max > 0 {
		lim := float64(p99Max.Microseconds()) / 1000
		for _, pt := range sweep.Points {
			if pt.OK == 0 {
				check(fmt.Errorf("latency gate: no successful requests at clients=%d", pt.Clients))
			}
			if pt.P99MS > lim {
				check(fmt.Errorf("latency gate: clients=%d p99 %.1fms exceeds %v", pt.Clients, pt.P99MS, *p99Max))
			}
		}
		fmt.Fprintf(os.Stderr, "ridload: latency gate passed: every level's p99 <= %v\n", *p99Max)
	}
}

// runWarmCheck measures the daemon's residency win: the same corpus
// twice on the memoized path. The second response must come from the
// daemon's warm state (cached) with an identical report.
func runWarmCheck(ctx context.Context, base string, body []byte, timeout time.Duration, minSpeedup float64) {
	cold, coldDur, err := serve.AnalyzeOnce(ctx, base, body, timeout)
	check(err)
	warm, warmDur, err := serve.AnalyzeOnce(ctx, base, body, timeout)
	check(err)
	if warm.Report != cold.Report {
		check(fmt.Errorf("warm-check: second response report differs from the first"))
	}
	if !warm.Cached {
		check(fmt.Errorf("warm-check: second identical request was not served from the daemon's warm state"))
	}
	speedup := float64(coldDur) / float64(warmDur)
	fmt.Printf("warm-check: cold=%v warm=%v speedup=%.1fx cached=%t bugs=%d\n",
		coldDur.Round(time.Millisecond), warmDur.Round(time.Millisecond), speedup, warm.Cached, warm.Bugs)
	if minSpeedup > 0 && speedup < minSpeedup {
		check(fmt.Errorf("warm-check: speedup %.2fx is below the required %.2fx", speedup, minSpeedup))
	}
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients value %q (want a comma list of positive counts)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -clients list")
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ridload: %v\n", err)
		os.Exit(1)
	}
}
