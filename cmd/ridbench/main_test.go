package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchMisuseAndTable2(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ridbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-misuse", "-table2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"error-handled call sites: 96",
		"missing the decrement:    67",
		"detected by RID:          40 of 67",
		"krbV               48 ( 48)       86 ( 86)       14 ( 14)",
		"total              86 ( 86)      114 (114)       16 ( 16)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestParseWorkers(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"1", []int{1}},
		{"-1", []int{-1}},
		{"1,2,4,8", []int{1, 2, 4, 8}},
		{" 1, 4 ", []int{1, 4}},
		{"1,,4", []int{1, 4}},
	}
	for _, c := range good {
		got, err := parseWorkers(c.in)
		if err != nil {
			t.Errorf("parseWorkers(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseWorkers(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseWorkers(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
	for _, in := range []string{"", ",", "x", "1,x", "0", "1,0,4"} {
		if got, err := parseWorkers(in); err == nil {
			t.Errorf("parseWorkers(%q) = %v, want error", in, got)
		}
	}
}

func TestBenchShowSpecs(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ridbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-show-specs").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "pm_runtime_get_sync") || !strings.Contains(s, "Py_DECREF") {
		t.Errorf("specs output incomplete:\n%s", s)
	}
}
