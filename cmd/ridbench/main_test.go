package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchMisuseAndTable2(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ridbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-misuse", "-table2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"error-handled call sites: 96",
		"missing the decrement:    67",
		"detected by RID:          40 of 67",
		"krbV               48 ( 48)       86 ( 86)       14 ( 14)",
		"total              86 ( 86)      114 (114)       16 ( 16)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestBenchShowSpecs(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "ridbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-show-specs").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "pm_runtime_get_sync") || !strings.Contains(s, "Py_DECREF") {
		t.Errorf("specs output incomplete:\n%s", s)
	}
}
