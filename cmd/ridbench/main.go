// Command ridbench regenerates the paper's evaluation tables and
// statistics (§6) against the synthetic corpora and prints them alongside
// the paper's own numbers.
//
//	ridbench -all            # everything
//	ridbench -table1         # function classification (Table 1)
//	ridbench -table2         # RID vs Cpychecker (Table 2)
//	ridbench -dpm            # §6.2 reports vs confirmed bugs
//	ridbench -misuse         # §6.3 pm_runtime_get census
//	ridbench -perf           # §6.5 scaling series
//	ridbench -perf -perf-json perf.json   # ...and save the series
//	ridbench -perf -compare perf.json     # ...and diff against a saved series
//	ridbench -perf -cache-dir dir         # cold vs warm runs with the persistent summary store
//	ridbench -perf -workers 1,2,4,8       # worker sweep: one snapshot per setting + scaling efficiency
//	ridbench -packs          # spec packs: precision/recall on the lock/fd corpora
//	ridbench -packs -min-precision 0.9 -min-recall 1  # ...and gate on the scores
//	ridbench -show-specs     # the predefined summaries (Figure 7)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/summary"
)

// parseWorkers parses the -workers flag: a comma-separated list of worker
// counts. One value selects that setting for every experiment; several
// values turn -perf into a sweep (one snapshot per setting). Zero is
// rejected (the analyzer treats negatives as "all cores", but 0 workers is
// always a typo).
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("bad -workers value %q (want a comma list of non-zero counts, negative = all cores)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers list")
	}
	return out, nil
}

// parseScales parses the -perf-scales flag: a comma list of positive
// corpus scale factors for the §6.5 series.
func parseScales(s string) ([]int, error) {
	scales, err := parseWorkers(s)
	if err != nil {
		return nil, fmt.Errorf("bad -perf-scales: %v", err)
	}
	for _, n := range scales {
		if n < 0 {
			return nil, fmt.Errorf("bad -perf-scales value %d (scales must be positive)", n)
		}
	}
	return scales, nil
}

func main() {
	var (
		all         = flag.Bool("all", false, "run every experiment")
		table1      = flag.Bool("table1", false, "Table 1: function classification")
		table2      = flag.Bool("table2", false, "Table 2: RID vs Cpychecker")
		dpm         = flag.Bool("dpm", false, "§6.2: DPM bug reports vs confirmed")
		misuse      = flag.Bool("misuse", false, "§6.3: pm_runtime_get misuse census")
		perf        = flag.Bool("perf", false, "§6.5: performance scaling")
		perfJSON    = flag.String("perf-json", "", "write the -perf series to this file as JSON")
		cacheDir    = flag.String("cache-dir", "", "with -perf: measure cold vs warm runs against this persistent summary store")
		cacheURL    = flag.String("cache-url", "", "with -perf -cache-dir: layer a fleet summary store (`rid storeserve`) behind the local one")
		compare     = flag.String("compare", "", "diff the -perf series against a snapshot written by -perf-json")
		ablations   = flag.Bool("ablations", false, "design-decision ablations (DESIGN.md §5)")
		packs       = flag.Bool("packs", false, "spec packs: precision/recall of the lock and fd packs on their seeded corpora")
		minPrec     = flag.Float64("min-precision", 0, "with -packs: exit non-zero if any pack's precision is below this (0 = no gate)")
		minRecall   = flag.Float64("min-recall", 0, "with -packs: exit non-zero if any pack's recall is below this (0 = no gate)")
		showSpecs   = flag.Bool("show-specs", false, "print the predefined summaries (Figure 7)")
		workersFlag = flag.String("workers", "1", "scheduler workers: one count, or a comma list (e.g. 1,2,4,8) to sweep -perf across settings; any negative value = all cores")
		minScaling  = flag.Float64("min-scaling", 0, "with a -workers sweep: exit non-zero unless the largest setting's analyze-time speedup over the first is at least this (0 = no gate)")
		perfScales  = flag.String("perf-scales", "1,2,4", "corpus scale factors for the -perf series (comma list)")
		seed        = flag.Int64("seed", 317, "corpus seed")
		deadline    = flag.Duration("deadline", 0, "overall deadline for the experiment run (0 = none)")
		pprofSrv    = flag.String("pprof", "", "serve /debug/pprof/ and /debug/vars on this address for the duration of the run")
	)
	flag.Parse()

	if *cacheURL != "" && *cacheDir == "" {
		check(fmt.Errorf("-cache-url requires -cache-dir (the fleet store layers behind a local store)"))
	}

	workerList, err := parseWorkers(*workersFlag)
	check(err)
	// Non-perf experiments run at a single setting: the first in the list.
	workers := &workerList[0]
	scales, err := parseScales(*perfScales)
	check(err)

	if *pprofSrv != "" {
		stopSrv, addr, err := obs.Serve(*pprofSrv, nil)
		check(err)
		fmt.Fprintf(os.Stderr, "ridbench: serving /debug/pprof/ on http://%s\n", addr)
		defer stopSrv() //nolint:errcheck
	}

	// ^C (or -deadline) cancels the run; experiments then report partial,
	// degraded numbers instead of being killed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	if *perfJSON != "" || *compare != "" || *minScaling > 0 {
		*perf = true
	}
	if *minScaling > 0 && len(workerList) < 2 {
		check(fmt.Errorf("-min-scaling needs a -workers sweep with at least two settings"))
	}
	if *minPrec > 0 || *minRecall > 0 {
		*packs = true
	}
	any := *table1 || *table2 || *dpm || *misuse || *perf || *showSpecs || *ablations || *packs
	if *all || !any {
		*table1, *table2, *dpm, *misuse, *perf, *ablations, *packs = true, true, true, true, true, true, true
	}

	if *showSpecs {
		printSpecs("Linux DPM", spec.LinuxDPM())
		printSpecs("Python/C", spec.PythonC())
		printSpecs("Lock pack", spec.Lock())
		printSpecs("FD pack", spec.FD())
	}
	if *table1 {
		cfg := experiments.DefaultTable1()
		cfg.Seed = *seed
		cfg.Workers = *workers
		r, err := experiments.Table1(ctx, cfg)
		check(err)
		fmt.Println(r.Format())
	}
	if *dpm {
		r, err := experiments.DPMBugs(ctx, *seed, *workers)
		check(err)
		fmt.Println(r.Format())
	}
	if *misuse {
		r, err := experiments.Misuse(ctx, *seed, *workers)
		check(err)
		fmt.Println(r.Format())
	}
	if *table2 {
		r, err := experiments.Table2(ctx, *workers)
		check(err)
		fmt.Println(r.Format())
	}
	if *perf && len(workerList) > 1 {
		// Sweep mode: the full §6.5 series once per worker setting, plus a
		// scaling-efficiency table; -perf-json saves the whole sweep.
		if *cacheDir != "" || *compare != "" {
			fmt.Fprintln(os.Stderr, "ridbench: -cache-dir/-compare apply to a single -workers setting and are ignored in a sweep")
		}
		sweep, err := experiments.RunPerfSweep(ctx, scales, workerList)
		check(err)
		fmt.Println(experiments.FormatPerfSweep(sweep))
		if *perfJSON != "" {
			f, err := os.Create(*perfJSON)
			check(err)
			check(experiments.WritePerfSweep(f, sweep))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "ridbench: perf sweep written to %s\n", *perfJSON)
		}
		if *minScaling > 0 {
			top := workerList[len(workerList)-1]
			sp, ok := sweep.Speedup(top)
			if !ok {
				check(fmt.Errorf("scaling gate: no timing for workers=%d", top))
			}
			if sp < *minScaling {
				check(fmt.Errorf("scaling gate: workers=%d speedup %.2fx over workers=%d is below the required %.2fx",
					top, sp, workerList[0], *minScaling))
			}
			fmt.Fprintf(os.Stderr, "ridbench: scaling gate passed: workers=%d speedup %.2fx >= %.2fx\n", top, sp, *minScaling)
		}
	} else if *perf && *cacheDir != "" {
		// Cold/warm mode: each scale is analyzed twice against the store;
		// the warm run must be byte-identical and mostly store hits.
		if *perfJSON != "" || *compare != "" {
			fmt.Fprintln(os.Stderr, "ridbench: -perf-json/-compare apply to the plain -perf series and are ignored with -cache-dir")
		}
		pts, err := experiments.PerfCached(ctx, scales, *workers, *cacheDir, *cacheURL)
		check(err)
		fmt.Println(experiments.FormatPerfCached(pts, *workers))
	} else if *perf {
		pts, err := experiments.Perf(ctx, scales, *workers)
		check(err)
		fmt.Println(experiments.FormatPerf(pts, *workers))
		if *perfJSON != "" {
			f, err := os.Create(*perfJSON)
			check(err)
			check(experiments.WritePerfSnapshot(f, *workers, pts))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "ridbench: perf snapshot written to %s\n", *perfJSON)
		}
		if *compare != "" {
			f, err := os.Open(*compare)
			check(err)
			old, err := experiments.ReadPerfSnapshot(f)
			check(f.Close())
			check(err)
			fmt.Println(experiments.DiffPerf(old, &experiments.PerfSnapshot{Workers: *workers, Points: pts}))
		}
	}
	if *ablations {
		rows, err := experiments.Ablations(ctx)
		check(err)
		fmt.Println(experiments.FormatAblations(rows))
	}
	if *packs {
		scores, err := experiments.PackEval(ctx, *seed, *workers)
		check(err)
		fmt.Println(experiments.FormatPackScores(scores))
		for _, s := range scores {
			if *minPrec > 0 && s.Precision < *minPrec {
				check(fmt.Errorf("pack gate: %s precision %.3f is below the required %.3f (spurious: %v)",
					s.Pack, s.Precision, *minPrec, s.Spurious))
			}
			if *minRecall > 0 && s.Recall < *minRecall {
				check(fmt.Errorf("pack gate: %s recall %.3f is below the required %.3f (missed: %v)",
					s.Pack, s.Recall, *minRecall, s.Missed))
			}
		}
	}
}

func printSpecs(title string, s *spec.Specs) {
	fmt.Printf("Predefined summaries: %s (Figure 7)\n", title)
	db := summary.NewDB()
	s.ApplyTo(db)
	for _, name := range db.Names() {
		fmt.Print(db.Get(name))
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ridbench: %v\n", err)
		os.Exit(1)
	}
}
