// Command ridbench regenerates the paper's evaluation tables and
// statistics (§6) against the synthetic corpora and prints them alongside
// the paper's own numbers.
//
//	ridbench -all            # everything
//	ridbench -table1         # function classification (Table 1)
//	ridbench -table2         # RID vs Cpychecker (Table 2)
//	ridbench -dpm            # §6.2 reports vs confirmed bugs
//	ridbench -misuse         # §6.3 pm_runtime_get census
//	ridbench -perf           # §6.5 scaling series
//	ridbench -perf -perf-json perf.json   # ...and save the series
//	ridbench -perf -compare perf.json     # ...and diff against a saved series
//	ridbench -perf -cache-dir dir         # cold vs warm runs with the persistent summary store
//	ridbench -show-specs     # the predefined summaries (Figure 7)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/summary"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		table1    = flag.Bool("table1", false, "Table 1: function classification")
		table2    = flag.Bool("table2", false, "Table 2: RID vs Cpychecker")
		dpm       = flag.Bool("dpm", false, "§6.2: DPM bug reports vs confirmed")
		misuse    = flag.Bool("misuse", false, "§6.3: pm_runtime_get misuse census")
		perf      = flag.Bool("perf", false, "§6.5: performance scaling")
		perfJSON  = flag.String("perf-json", "", "write the -perf series to this file as JSON")
		cacheDir  = flag.String("cache-dir", "", "with -perf: measure cold vs warm runs against this persistent summary store")
		compare   = flag.String("compare", "", "diff the -perf series against a snapshot written by -perf-json")
		ablations = flag.Bool("ablations", false, "design-decision ablations (DESIGN.md §5)")
		showSpecs = flag.Bool("show-specs", false, "print the predefined summaries (Figure 7)")
		workers   = flag.Int("workers", 1, "parallel SCC workers (-1 = all cores)")
		seed      = flag.Int64("seed", 317, "corpus seed")
		deadline  = flag.Duration("deadline", 0, "overall deadline for the experiment run (0 = none)")
		pprofSrv  = flag.String("pprof", "", "serve /debug/pprof/ and /debug/vars on this address for the duration of the run")
	)
	flag.Parse()

	if *pprofSrv != "" {
		stopSrv, addr, err := obs.Serve(*pprofSrv, nil)
		check(err)
		fmt.Fprintf(os.Stderr, "ridbench: serving /debug/pprof/ on http://%s\n", addr)
		defer stopSrv() //nolint:errcheck
	}

	// ^C (or -deadline) cancels the run; experiments then report partial,
	// degraded numbers instead of being killed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	if *perfJSON != "" || *compare != "" {
		*perf = true
	}
	any := *table1 || *table2 || *dpm || *misuse || *perf || *showSpecs || *ablations
	if *all || !any {
		*table1, *table2, *dpm, *misuse, *perf, *ablations = true, true, true, true, true, true
	}

	if *showSpecs {
		printSpecs("Linux DPM", spec.LinuxDPM())
		printSpecs("Python/C", spec.PythonC())
	}
	if *table1 {
		cfg := experiments.DefaultTable1()
		cfg.Seed = *seed
		cfg.Workers = *workers
		r, err := experiments.Table1(ctx, cfg)
		check(err)
		fmt.Println(r.Format())
	}
	if *dpm {
		r, err := experiments.DPMBugs(ctx, *seed, *workers)
		check(err)
		fmt.Println(r.Format())
	}
	if *misuse {
		r, err := experiments.Misuse(ctx, *seed, *workers)
		check(err)
		fmt.Println(r.Format())
	}
	if *table2 {
		r, err := experiments.Table2(ctx, *workers)
		check(err)
		fmt.Println(r.Format())
	}
	if *perf && *cacheDir != "" {
		// Cold/warm mode: each scale is analyzed twice against the store;
		// the warm run must be byte-identical and mostly store hits.
		if *perfJSON != "" || *compare != "" {
			fmt.Fprintln(os.Stderr, "ridbench: -perf-json/-compare apply to the plain -perf series and are ignored with -cache-dir")
		}
		pts, err := experiments.PerfCached(ctx, []int{1, 2, 4}, *workers, *cacheDir)
		check(err)
		fmt.Println(experiments.FormatPerfCached(pts, *workers))
	} else if *perf {
		pts, err := experiments.Perf(ctx, []int{1, 2, 4}, *workers)
		check(err)
		fmt.Println(experiments.FormatPerf(pts, *workers))
		if *perfJSON != "" {
			f, err := os.Create(*perfJSON)
			check(err)
			check(experiments.WritePerfSnapshot(f, *workers, pts))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "ridbench: perf snapshot written to %s\n", *perfJSON)
		}
		if *compare != "" {
			f, err := os.Open(*compare)
			check(err)
			old, err := experiments.ReadPerfSnapshot(f)
			check(f.Close())
			check(err)
			fmt.Println(experiments.DiffPerf(old, &experiments.PerfSnapshot{Workers: *workers, Points: pts}))
		}
	}
	if *ablations {
		rows, err := experiments.Ablations(ctx)
		check(err)
		fmt.Println(experiments.FormatAblations(rows))
	}
}

func printSpecs(title string, s *spec.Specs) {
	fmt.Printf("Predefined summaries: %s (Figure 7)\n", title)
	db := summary.NewDB()
	s.ApplyTo(db)
	for _, name := range db.Names() {
		fmt.Print(db.Get(name))
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ridbench: %v\n", err)
		os.Exit(1)
	}
}
