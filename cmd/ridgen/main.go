// Command ridgen writes a synthetic evaluation corpus to disk: a
// Linux-like DPM driver tree (-kind kernel), the three Python/C-like
// modules of Table 2 (-kind pyc), or the spec-pack corpora for the lock
// and fd packs (-kind lock, -kind fd). The generated sources are mini-C
// and can be analyzed with cmd/rid (use -spec lock / -spec fd for the
// pack corpora).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus/fdgen"
	"repro/internal/corpus/kernelgen"
	"repro/internal/corpus/lockgen"
	"repro/internal/corpus/pycgen"
)

// truthEntry is one function's machine-readable ground-truth label in
// TRUTH.json.
type truthEntry struct {
	Pattern    string `json:"pattern"`
	Real       bool   `json:"real"`
	Detectable bool   `json:"detectable"`
	FPExpected bool   `json:"fp_expected"`
}

// truthFile is the TRUTH.json sidecar: enough to regenerate and to score
// an analysis run without importing the generator.
type truthFile struct {
	Pack      string                `json:"pack"`
	Generator string                `json:"generator"`
	Seed      int64                 `json:"seed"`
	Functions map[string]truthEntry `json:"functions"`
}

func main() {
	var (
		kind    = flag.String("kind", "kernel", "corpus kind: kernel, pyc, lock or fd")
		out     = flag.String("out", "corpus", "output directory")
		seed    = flag.Int64("seed", 317, "generation seed")
		others  = flag.Int("others", 200, "kernel: category-3 utility functions")
		helpers = flag.Int("helpers", 10, "kernel: simple category-2 helpers")
		complx  = flag.Int("complex", 8, "kernel: complex category-2 helpers")
		truth   = flag.Bool("truth", false, "also write ground-truth labels (TRUTH.txt; TRUTH.json for lock/fd)")
	)
	flag.Parse()

	switch *kind {
	case "kernel":
		c := kernelgen.Generate(kernelgen.Config{
			Seed:           *seed,
			Mix:            kernelgen.PaperMix(),
			SimpleHelpers:  *helpers,
			ComplexHelpers: *complx,
			OtherFuncs:     *others,
		})
		writeFiles(*out, c.Files)
		if *truth {
			var lines []byte
			for fn, info := range c.Truth {
				lines = append(lines, fmt.Sprintf("%s pattern=%s real=%t detectable=%t fp=%t\n",
					fn, info.Pattern, info.Real, info.Detectable, info.FPExpected)...)
			}
			mustWrite(filepath.Join(*out, "TRUTH.txt"), lines)
		}
		fmt.Printf("wrote %d files, %d functions to %s\n", len(c.Files), c.NumFuncs, *out)
	case "pyc":
		total := 0
		for _, cfg := range pycgen.PaperConfigs() {
			m := pycgen.Generate(cfg)
			writeFiles(*out, m.Files)
			total += len(m.Files)
			if *truth {
				var lines []byte
				for fn, cls := range m.Truth {
					lines = append(lines, fmt.Sprintf("%s class=%s\n", fn, cls)...)
				}
				mustWrite(filepath.Join(*out, m.Name, "TRUTH.txt"), lines)
			}
		}
		fmt.Printf("wrote %d files to %s\n", total, *out)
	case "lock":
		c := lockgen.Generate(lockgen.Config{Seed: *seed, Mix: lockgen.DefaultMix()})
		writeFiles(*out, c.Files)
		if *truth {
			tf := truthFile{Pack: "lock", Generator: "lockgen", Seed: *seed,
				Functions: make(map[string]truthEntry, len(c.Truth))}
			for fn, info := range c.Truth {
				tf.Functions[fn] = truthEntry{Pattern: string(info.Pattern),
					Real: info.Real, Detectable: info.Detectable, FPExpected: info.FPExpected}
			}
			writeTruthJSON(*out, tf)
		}
		fmt.Printf("wrote %d files, %d functions to %s\n", len(c.Files), c.NumFuncs, *out)
	case "fd":
		c := fdgen.Generate(fdgen.Config{Seed: *seed, Mix: fdgen.DefaultMix()})
		writeFiles(*out, c.Files)
		if *truth {
			tf := truthFile{Pack: "fd", Generator: "fdgen", Seed: *seed,
				Functions: make(map[string]truthEntry, len(c.Truth))}
			for fn, info := range c.Truth {
				tf.Functions[fn] = truthEntry{Pattern: string(info.Pattern),
					Real: info.Real, Detectable: info.Detectable, FPExpected: info.FPExpected}
			}
			writeTruthJSON(*out, tf)
		}
		fmt.Printf("wrote %d files, %d functions to %s\n", len(c.Files), c.NumFuncs, *out)
	default:
		fmt.Fprintf(os.Stderr, "ridgen: unknown -kind %q (want kernel, pyc, lock or fd)\n", *kind)
		os.Exit(2)
	}
}

func writeTruthJSON(root string, tf truthFile) {
	data, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		fatal(err)
	}
	mustWrite(filepath.Join(root, "TRUTH.json"), append(data, '\n'))
}

func writeFiles(root string, files map[string]string) {
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		mustWrite(path, []byte(src))
	}
}

func mustWrite(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ridgen: %v\n", err)
	os.Exit(1)
}
