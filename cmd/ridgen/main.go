// Command ridgen writes a synthetic evaluation corpus to disk: either a
// Linux-like DPM driver tree (-kind kernel) or the three Python/C-like
// modules of Table 2 (-kind pyc). The generated sources are mini-C and can
// be analyzed with cmd/rid.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus/kernelgen"
	"repro/internal/corpus/pycgen"
)

func main() {
	var (
		kind    = flag.String("kind", "kernel", "corpus kind: kernel or pyc")
		out     = flag.String("out", "corpus", "output directory")
		seed    = flag.Int64("seed", 317, "generation seed")
		others  = flag.Int("others", 200, "kernel: category-3 utility functions")
		helpers = flag.Int("helpers", 10, "kernel: simple category-2 helpers")
		complx  = flag.Int("complex", 8, "kernel: complex category-2 helpers")
		truth   = flag.Bool("truth", false, "also write ground-truth labels (TRUTH.txt)")
	)
	flag.Parse()

	switch *kind {
	case "kernel":
		c := kernelgen.Generate(kernelgen.Config{
			Seed:           *seed,
			Mix:            kernelgen.PaperMix(),
			SimpleHelpers:  *helpers,
			ComplexHelpers: *complx,
			OtherFuncs:     *others,
		})
		writeFiles(*out, c.Files)
		if *truth {
			var lines []byte
			for fn, info := range c.Truth {
				lines = append(lines, fmt.Sprintf("%s pattern=%s real=%t detectable=%t fp=%t\n",
					fn, info.Pattern, info.Real, info.Detectable, info.FPExpected)...)
			}
			mustWrite(filepath.Join(*out, "TRUTH.txt"), lines)
		}
		fmt.Printf("wrote %d files, %d functions to %s\n", len(c.Files), c.NumFuncs, *out)
	case "pyc":
		total := 0
		for _, cfg := range pycgen.PaperConfigs() {
			m := pycgen.Generate(cfg)
			writeFiles(*out, m.Files)
			total += len(m.Files)
			if *truth {
				var lines []byte
				for fn, cls := range m.Truth {
					lines = append(lines, fmt.Sprintf("%s class=%s\n", fn, cls)...)
				}
				mustWrite(filepath.Join(*out, m.Name, "TRUTH.txt"), lines)
			}
		}
		fmt.Printf("wrote %d files to %s\n", total, *out)
	default:
		fmt.Fprintf(os.Stderr, "ridgen: unknown -kind %q\n", *kind)
		os.Exit(2)
	}
}

func writeFiles(root string, files map[string]string) {
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			fatal(err)
		}
		mustWrite(path, []byte(src))
	}
}

func mustWrite(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ridgen: %v\n", err)
	os.Exit(1)
}
