package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func build(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ridgen")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestGenerateKernelCorpusToDisk(t *testing.T) {
	bin := build(t)
	out := filepath.Join(t.TempDir(), "corpus")
	if o, err := exec.Command(bin, "-kind", "kernel", "-out", out, "-others", "5", "-truth").CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, o)
	}
	files, err := filepath.Glob(filepath.Join(out, "drivers", "gen", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no generated files: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "pm_runtime_get") {
		t.Error("generated file lacks DPM calls")
	}
	truth, err := os.ReadFile(filepath.Join(out, "TRUTH.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(truth), "pattern=") {
		t.Error("truth labels missing")
	}
}

func TestGeneratePycCorpusToDisk(t *testing.T) {
	bin := build(t)
	out := filepath.Join(t.TempDir(), "pyc")
	if o, err := exec.Command(bin, "-kind", "pyc", "-out", out, "-truth").CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, o)
	}
	for _, mod := range []string{"krbV", "ldap", "pyaudio"} {
		files, _ := filepath.Glob(filepath.Join(out, mod, "*.c"))
		if len(files) == 0 {
			t.Errorf("module %s missing", mod)
		}
		if _, err := os.Stat(filepath.Join(out, mod, "TRUTH.txt")); err != nil {
			t.Errorf("module %s truth missing", mod)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	bin := build(t)
	if _, err := exec.Command(bin, "-kind", "bogus").CombinedOutput(); err == nil {
		t.Fatal("unknown kind must fail")
	}
}
