package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs/promtext"
	"repro/internal/serve"
)

// startServeBinary boots the built rid binary as a daemon and returns
// its base URL; the daemon is interrupted and drained at cleanup.
func startServeBinary(t *testing.T, bin string, extraArgs ...string) string {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-quiet"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(os.Interrupt) //nolint:errcheck
		cmd.Wait()                       //nolint:errcheck
	})

	// The daemon announces its bound address on stderr once listening.
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving analysis API on http://"); i >= 0 {
			addr := line[i+len("serving analysis API on http://"):]
			if j := strings.IndexByte(addr, ' '); j >= 0 {
				addr = addr[:j]
			}
			go func() { // drain the rest so the child never blocks on stderr
				for sc.Scan() {
				}
			}()
			return "http://" + addr
		}
	}
	t.Fatal("daemon never announced its address")
	return ""
}

// TestCLIServeObservabilityE2E drives the full operator surface of the
// built binary: access log, tail-sampled slow traces, the /metrics
// exposition, and `rid explain -trace` on a flushed trace file.
func TestCLIServeObservabilityE2E(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	accessPath := filepath.Join(dir, "access.jsonl")
	traceDir := filepath.Join(dir, "traces")

	// 20ms separates the two requests decisively: the single-function
	// fast request analyzes in ~1ms, the scale-2 corpus in ~100ms.
	base := startServeBinary(t, bin,
		"-access-log", accessPath,
		"-slow-trace-dir", traceDir,
		"-slow-threshold", "20ms",
		"-request-timeout", "2m",
	)

	post := func(req *serve.AnalyzeRequest) (*http.Response, *serve.AnalyzeResponse) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ar serve.AnalyzeResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("status %d: %v", resp.StatusCode, err)
		}
		return resp, &ar
	}

	fastResp, fastAR := post(&serve.AnalyzeRequest{Files: map[string]string{"drv.c": buggyDriver}, NoCache: true})
	if fastResp.StatusCode != http.StatusOK || fastAR.Bugs != 1 {
		t.Fatalf("fast request: %d %+v", fastResp.StatusCode, fastAR)
	}
	slowResp, slowAR := post(&serve.AnalyzeRequest{Files: experiments.ServeCorpus(2, 1), NoCache: true})
	if slowResp.StatusCode != http.StatusOK {
		t.Fatalf("slow request: %d %+v", slowResp.StatusCode, slowAR)
	}
	slowID := slowResp.Header.Get("X-Rid-Request-Id")
	if slowID == "" {
		t.Fatal("slow response has no request id")
	}
	if len(slowAR.Phases) == 0 || slowResp.Header.Get("Server-Timing") == "" {
		t.Fatal("response missing phase breakdown or Server-Timing")
	}

	// Exactly one trace file — the slow request's — must appear; the
	// flush happens after the response is written, so poll briefly.
	tracePath := filepath.Join(traceDir, slowID+".jsonl")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(tracePath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			entries, _ := os.ReadDir(traceDir)
			t.Fatalf("trace %s never flushed; dir has %v", tracePath, entries)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if entries, err := os.ReadDir(traceDir); err != nil || len(entries) != 1 {
		t.Fatalf("trace dir: %v entries, err %v (fast request must not flush)", entries, err)
	}

	// The flushed trace is what `rid explain -trace` reads.
	out, err := exec.Command(bin, "explain", "-trace", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("explain -trace: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "spans") || !strings.Contains(string(out), slowID) {
		t.Fatalf("explain -trace output: %s", out)
	}

	// Access log: one schema-conforming line per analyze request, with
	// the slow corpus run visibly slower than the driver run.
	var lines []string
	deadline = time.Now().Add(10 * time.Second)
	for {
		data, _ := os.ReadFile(accessPath)
		lines = strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) >= 2 && lines[0] != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log never reached 2 lines: %q", string(data))
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, l := range lines[:2] {
		var rec struct {
			ID        string           `json:"id"`
			Route     string           `json:"route"`
			Status    int              `json:"status"`
			ElapsedUS int64            `json:"elapsed_us"`
			Phases    map[string]int64 `json:"phases"`
		}
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("access line %d: %v: %s", i, err, l)
		}
		if rec.Route != "analyze" || rec.Status != 200 || rec.ID == "" || len(rec.Phases) != 7 {
			t.Fatalf("access line %d: %s", i, l)
		}
	}
	if !strings.Contains(lines[1], `"id":"`+slowID+`"`) {
		t.Fatalf("second access line is not the slow request: %s", lines[1])
	}

	// The live exposition parses and counted both analyzes.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("daemon exposition rejected: %v", err)
	}
	if v, _ := fams.Value("rid_serve_requests_total", map[string]string{"route": "analyze", "code": "200"}); v != 2 {
		t.Fatalf("requests_total{analyze,200} = %v, want 2", v)
	}
	if v, _ := fams.Value("rid_serve_slow_traces_total", nil); v != 1 {
		t.Fatalf("slow_traces_total = %v, want 1", v)
	}
}

// TestCLIServeCheckMetrics: the no-listener self-check mode.
func TestCLIServeCheckMetrics(t *testing.T) {
	bin := buildCLI(t)
	out, err := exec.Command(bin, "serve", "-check-metrics").CombinedOutput()
	if err != nil {
		t.Fatalf("serve -check-metrics: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "metrics exposition OK") {
		t.Fatalf("output: %s", out)
	}
}

// TestCLIExplainTraceRejectsGarbage: a malformed trace file is a usage
// error (exit 2), not a crash or silent success.
func TestCLIExplainTraceRejectsGarbage(t *testing.T) {
	bin := buildCLI(t)
	p := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(p, []byte("{\"seq\":1,\"phase\":\"x\",\"fn\":\"f\",\"start_us\":1,\"dur_us\":2}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "explain", "-trace", p).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on malformed trace, got %v\n%s", err, out)
	}
}
