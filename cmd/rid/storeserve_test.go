package main

import (
	"bufio"
	"errors"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startStoreServe launches `rid storeserve` as a real subprocess on a
// free port and returns its base URL. SIGINT + drain at cleanup.
func startStoreServe(t *testing.T, bin, storeDir string, extra ...string) string {
	t.Helper()
	args := append([]string{"storeserve", "-addr", "127.0.0.1:0", "-cache-dir", storeDir, "-quiet"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start storeserve: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(os.Interrupt) //nolint:errcheck // best-effort teardown
		cmd.Wait()                       //nolint:errcheck
	})

	// The startup line carries the bound address:
	//   rid: serving summary store <dir> on http://<addr> (...)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "on http://"); ok {
				addr, _, _ := strings.Cut(rest, " ")
				addrCh <- "http://" + addr
				break
			}
		}
	}()
	select {
	case url := <-addrCh:
		return url
	case <-time.After(10 * time.Second):
		t.Fatal("storeserve did not announce its address")
		return ""
	}
}

func countStoredEntries(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error { //nolint:errcheck // absent dir = 0
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".sum") {
			n++
		}
		return nil
	})
	return n
}

// TestCLIStoreServeSharedCache is the end-to-end fleet-cache drill: a
// real storeserve subprocess, two rid runs from different machines'
// worth of local state sharing it, and a run against a dead store URL —
// all producing the identical report, the last one degraded with a
// cache-remote diagnostic.
func TestCLIStoreServeSharedCache(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	storeDir := filepath.Join(t.TempDir(), "fleet")
	url := startStoreServe(t, bin, storeDir)

	// Baseline: no caching anywhere.
	want, err := exec.Command(bin, src).CombinedOutput()
	if cmdExit(err) != 1 {
		t.Fatalf("baseline run: %v\n%s", err, want)
	}

	// Cold run publishes to the fleet store through the write-behind.
	out1, err := exec.Command(bin, "-cache-dir", t.TempDir(), "-cache-url", url, src).CombinedOutput()
	if cmdExit(err) != 1 {
		t.Fatalf("cold fleet run: %v\n%s", err, out1)
	}
	if string(out1) != string(want) {
		t.Errorf("cold fleet run output differs from baseline:\n--- fleet ---\n%s--- baseline ---\n%s", out1, want)
	}
	if n := countStoredEntries(t, storeDir); n == 0 {
		t.Fatal("fleet store is empty after the cold run; the write-behind published nothing")
	}

	// Warm run from an empty local dir: every hit crosses the wire, and
	// the report must not change by a byte.
	out2, err := exec.Command(bin, "-cache-dir", t.TempDir(), "-cache-url", url, src).CombinedOutput()
	if cmdExit(err) != 1 {
		t.Fatalf("warm fleet run: %v\n%s", err, out2)
	}
	if string(out2) != string(want) {
		t.Errorf("warm fleet run output differs from baseline:\n--- fleet ---\n%s--- baseline ---\n%s", out2, want)
	}

	// The server's health surface saw the traffic.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	// A dead store URL must not change the verdict: same exit code, same
	// reports, plus an explicit cache-remote diagnostic under -diag.
	out3, err := exec.Command(bin, "-cache-dir", t.TempDir(), "-cache-url", "http://127.0.0.1:1", "-diag", src).CombinedOutput()
	if cmdExit(err) != 1 {
		t.Fatalf("dead-store run: %v\n%s", err, out3)
	}
	if !strings.Contains(string(out3), "cache-remote") {
		t.Errorf("dead-store run printed no cache-remote diagnostic:\n%s", out3)
	}
	if !strings.Contains(string(out3), "drv_op") {
		t.Errorf("dead-store run lost the bug report:\n%s", out3)
	}
}

// TestCLIStoreServeFailEvery drives rid against a storeserve running
// deterministic fault injection: the analysis must stay correct (exit 1,
// same report) and surface the degradation, never fail or hang.
func TestCLIStoreServeFailEvery(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	url := startStoreServe(t, bin, filepath.Join(t.TempDir(), "fleet"), "-fail-every", "2")

	want, err := exec.Command(bin, src).CombinedOutput()
	if cmdExit(err) != 1 {
		t.Fatalf("baseline run: %v\n%s", err, want)
	}
	out, err := exec.Command(bin, "-cache-dir", t.TempDir(), "-cache-url", url, src).CombinedOutput()
	if cmdExit(err) != 1 {
		t.Fatalf("fail-every run: %v\n%s", err, out)
	}
	if string(out) != string(want) {
		t.Errorf("fail-every run output differs from baseline:\n--- flaky ---\n%s--- baseline ---\n%s", out, want)
	}
}

// cmdExit extracts the process exit code (0 on nil).
func cmdExit(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}
