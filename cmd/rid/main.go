// Command rid analyzes mini-C sources for reference count bugs using
// inconsistent path pair checking.
//
// Usage:
//
//	rid [flags] file.c [file2.c ...]
//	rid [flags] -dir path/to/tree
//	rid explain [-fn F] [-html out.html] file.c [file2.c ...]
//	rid serve [-addr host:port] [-dir corpus] [-cache-dir dir]
//	rid storeserve [-addr host:port] -cache-dir dir
//
// The explain subcommand re-runs the analysis with provenance capture on
// and prints, per bug, the complete derivation: both CFG paths with
// block-level source positions, the entry constraints before and after
// the projection of locals, every callee summary entry applied, the
// deciding solver query, and the witness-replay verdict
// (confirmed-by-replay / replay-diverged / not-replayable). With -html
// it also writes a self-contained evidence page embedding a Graphviz
// overlay of the two paths.
//
// The serve subcommand runs the analysis as a long-lived daemon: parsed
// IR for a resident corpus, the expression interner, the solver cache,
// and the persistent summary store stay hot across requests. It serves
// POST /v1/analyze, GET /v1/explain/{fn}, GET /v1/summary/{digest},
// GET /healthz and /debug/... with admission control (bounded in-flight
// analyses, 429 + Retry-After beyond the queue) and per-request
// deadlines; see the README's "rid serve" section and cmd/ridload for
// the matching load generator.
//
// Flags select the predefined API specifications (-spec linux-dpm or
// -spec python-c, plus -spec-file for custom DSL files), tune the path and
// sub-case budgets, and control output verbosity. Long runs can be
// bounded: -deadline caps the whole run, -func-timeout caps any single
// function, and both degrade gracefully — partial results are printed and
// -diag lists exactly what was skipped or truncated. Interrupting with
// ^C likewise cancels the run and prints what was found so far.
//
// Repeated runs over a mostly-unchanged tree can reuse results:
// -cache-dir names a persistent summary store, and warm runs skip every
// function whose content digest (its own IR plus its callees', see
// internal/store) is unchanged, with byte-identical output.
//
// The storeserve subcommand exposes one such store directory over HTTP
// as a fleet-shared warm cache (internal/store/remote). Any rid,
// ridbench, or `rid serve` process pointed at it with -cache-url fetches
// entries it is missing and ships back what it computes; a dead or
// misbehaving store server only costs warmth — runs degrade to the local
// tier with a cache-remote diagnostic, never hang, and never change
// their answers.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/store/remote"
	"repro/internal/summary"
	"repro/rid"
)

// exitCode carries the process exit status through panic/recover so that
// every deferred cleanup — the buffered -trace flush above all — runs
// before the process dies. A bare os.Exit would skip them on exactly the
// degraded runs (deadline hit, bugs found) where a truncated trace file
// hurts the most.
type exitCode int

// exit terminates with the given status after unwinding through every
// pending defer. All exit paths below the top of cliMain use it (or
// fatalf) instead of os.Exit.
func exit(code int) { panic(exitCode(code)) }

func main() { os.Exit(cliMain()) }

func cliMain() (code int) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			code = int(c)
		}
	}()
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "explain":
			runExplain(os.Args[2:])
			return 0
		case "serve":
			runServe(os.Args[2:])
			return 0
		case "storeserve":
			runStoreServe(os.Args[2:])
			return 0
		}
	}
	var (
		specName  = flag.String("spec", "linux-dpm", "base API specs: a built-in pack (fd, linux-dpm, lock, python-c) or a spec-DSL file path")
		specPacks = flag.String("spec-pack", "", "comma-separated built-in packs merged into -spec (conflicting API definitions are rejected)")
		specFile  = flag.String("spec-file", "", "additional summary-DSL file to merge")
		dir       = flag.String("dir", "", "analyze every *.c file under this directory")
		maxPaths  = flag.Int("max-paths", 100, "maximum paths enumerated per function")
		maxSubs   = flag.Int("max-subcases", 10, "maximum summary entries per path")
		cat2      = flag.Int("cat2-conds", 3, "category-2 complexity gate (conditional branches)")
		workers   = flag.Int("workers", 1, "scheduler workers (negative = all cores)")
		deadline  = flag.Duration("deadline", 0, "overall run deadline (0 = none); partial results are printed")
		funcTO    = flag.Duration("func-timeout", 0, "per-function wall-clock budget (0 = none)")
		maxCons   = flag.Int("solver-max-constraints", 0, "solver give-up threshold in inequalities per query (0 = default)")
		maxSplit  = flag.Int("solver-max-splits", 0, "solver disequality case-split budget per query (0 = default)")
		verbose   = flag.Bool("v", false, "print full two-entry evidence for each bug")
		stats     = flag.Bool("stats", false, "print classification and analysis statistics")
		diag      = flag.Bool("diag", false, "print degradation diagnostics (truncations, timeouts, panics)")
		separate  = flag.Bool("separate", false, "analyze files separately with a shared summary DB (§5.3)")
		saveSums  = flag.String("save-summaries", "", "write the computed summary database to this JSON file")
		dotFn     = flag.String("dot", "", "print the named function's CFG in Graphviz dot syntax and exit")
		format    = flag.String("format", "text", "report format: text, json or sarif")
		suppress  = flag.String("suppress", "", "comma-separated function names whose reports are discarded")
		trace     = flag.String("trace", "", "write a JSONL span log of every pipeline phase to this file")
		cacheDir  = flag.String("cache-dir", "", "persistent summary store directory: warm runs skip unchanged functions (see README)")
		cacheURL  = flag.String("cache-url", "", "fleet summary store URL (`rid storeserve`) layered behind -cache-dir; requires -cache-dir")
		metrics   = flag.Bool("metrics", false, "print the metrics registry (counters and phase histograms) after the run")
		pprofSrv  = flag.String("pprof", "", "serve /debug/pprof/ and /debug/vars on this address (e.g. localhost:6060) for the duration of the run")
	)
	flag.Parse()

	if *cacheURL != "" && *cacheDir == "" {
		// The fleet store is a warm tier behind the local one, not a
		// replacement: without a local directory there is nowhere to write
		// through to, and a network blip would mean re-analyzing work this
		// very run already did.
		fatalf("-cache-url requires -cache-dir (the fleet store layers behind a local store)")
	}

	// ^C cancels the analysis; the run returns promptly with partial
	// results instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	specs := loadSpecs(*specName, *specFile)

	traceW := openTrace(*trace)
	if traceW != nil {
		defer traceW.close()
	}

	if *separate {
		copts := core.Options{
			Workers:      *workers,
			MaxCat2Conds: *cat2,
			FuncTimeout:  *funcTO,
			SolverLimits: solver.Limits{MaxConstraints: *maxCons, MaxSplits: *maxSplit},
			CacheDir:     *cacheDir,
			CacheURL:     *cacheURL,
		}
		copts.Exec.MaxPaths = *maxPaths
		copts.Exec.MaxSubcases = *maxSubs
		var tracer obs.Tracer
		if traceW != nil {
			tracer = obs.NewJSONLTracer(traceW.buf)
		}
		copts.Obs = obs.New(tracer, obs.NewRegistry())
		if *metrics {
			copts.Obs.EnableQueryTiming()
		}
		if *pprofSrv != "" {
			stopSrv := serveDebug(*pprofSrv, copts.Obs.Registry())
			defer stopSrv()
		}
		runSeparate(ctx, flag.Args(), *specName, splitList(*specPacks), *specFile, copts, *saveSums, *diag, *metrics, *format)
		return 0
	}

	a := rid.New(specs)
	opts := rid.Options{
		MaxPaths:             *maxPaths,
		MaxSubcases:          *maxSubs,
		MaxCat2Conds:         *cat2,
		SpecPacks:            splitList(*specPacks),
		Workers:              *workers,
		FuncTimeout:          *funcTO,
		SolverMaxConstraints: *maxCons,
		SolverMaxSplits:      *maxSplit,
		QueryTiming:          *metrics,
		CacheDir:             *cacheDir,
		CacheURL:             *cacheURL,
	}
	if traceW != nil {
		opts.TraceWriter = traceW.buf
	}
	if *suppress != "" {
		opts.Suppress = strings.Split(*suppress, ",")
	}
	a.SetOptions(opts)

	if *pprofSrv != "" {
		stop, addr, err := a.ServeDebug(*pprofSrv)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rid: serving /debug/pprof/ and /debug/vars on http://%s\n", addr)
		defer stop() //nolint:errcheck
	}

	if *dir != "" {
		if err := a.AddDir(*dir); err != nil {
			fatalf("%v", err)
		}
	}
	for _, f := range flag.Args() {
		if err := a.AddFile(f); err != nil {
			fatalf("%v", err)
		}
	}
	if a.NumFunctions() == 0 {
		fatalf("no functions to analyze (pass files or -dir)")
	}

	if *dotFn != "" {
		dot := a.FunctionCFG(*dotFn)
		if dot == "" {
			fatalf("function %q not defined", *dotFn)
		}
		fmt.Print(dot)
		return 0
	}

	res, err := a.RunContext(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	if err := res.WriteReports(os.Stdout, *format, *verbose); err != nil {
		fatalf("%v", err)
	}
	if *diag {
		if err := res.WriteDiagnostics(os.Stdout, *format); err != nil {
			fatalf("%v", err)
		}
	}
	if *stats {
		fmt.Printf("functions: %d total, %d analyzed, %d paths\n",
			res.FuncsTotal, res.FuncsAnalyzed, res.PathsEnumerated)
		c := res.Categories
		fmt.Printf("categories: refcount=%d affecting(analyzed)=%d affecting(skipped)=%d other=%d\n",
			c.RefcountChanging, c.AffectingAnalyzed, c.AffectingUnanalyzed, c.Other)
		if res.Degraded() {
			fmt.Printf("degraded: %d truncated, %d timed out, %d panicked, %d diagnostics\n",
				res.FuncsTruncated, res.FuncsTimedOut, res.FuncsPanicked, len(res.Diagnostics))
		}
	}
	if *metrics {
		if err := res.WriteMetrics(os.Stdout, *format); err != nil {
			fatalf("%v", err)
		}
	}
	if ctx.Err() != nil {
		// Partial results were printed; make the truncation unmissable.
		fmt.Fprintf(os.Stderr, "rid: run canceled (%v); results are partial\n", ctx.Err())
		return 3
	}
	if len(res.Bugs) > 0 {
		return 1
	}
	return 0
}

// runServe implements `rid serve`: the long-lived analysis daemon. It
// blocks until interrupted, then shuts down gracefully — in-flight
// analyses drain (bounded) before the process exits 0.
func runServe(args []string) {
	fs := flag.NewFlagSet("rid serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "localhost:8080", "listen address (port 0 picks a free one)")
		specName    = fs.String("spec", "linux-dpm", "default API specs: a built-in pack (fd, linux-dpm, lock, python-c) or a spec-DSL file path")
		specPacks   = fs.String("spec-pack", "", "comma-separated built-in packs merged into -spec for every request")
		specFile    = fs.String("spec-file", "", "additional summary-DSL file merged into the default specs")
		dir         = fs.String("dir", "", "resident corpus: every *.c under this directory is kept loaded; enables corpus requests and /v1/explain")
		cacheDir    = fs.String("cache-dir", "", "persistent summary store shared by all requests; enables /v1/summary digest lookups")
		cacheURL    = fs.String("cache-url", "", "fleet summary store URL (`rid storeserve`) layered behind -cache-dir (or alone, for lookup-only /v1/summary)")
		workers     = fs.Int("workers", 1, "default scheduler workers per analysis (negative = all cores)")
		maxPaths    = fs.Int("max-paths", 100, "default maximum paths enumerated per function")
		maxSubs     = fs.Int("max-subcases", 10, "default maximum summary entries per path")
		funcTO      = fs.Duration("func-timeout", 0, "per-function wall-clock budget (0 = none)")
		maxInflight = fs.Int("max-inflight", 2, "concurrent analyses; more are queued")
		queueDepth  = fs.Int("queue-depth", 0, "requests waiting for a slot before 429 (0 = 4x max-inflight)")
		queueWait   = fs.Duration("queue-wait", 2*time.Second, "longest a queued request waits for a slot before 429")
		reqTimeout  = fs.Duration("request-timeout", 60*time.Second, "per-request analysis deadline (clients can only shorten it)")
		drain       = fs.Duration("drain", 15*time.Second, "how long shutdown waits for in-flight requests")
		quiet       = fs.Bool("quiet", false, "no per-request log lines")
		accessLog   = fs.String("access-log", "", "append one structured JSONL line per request to this file (- for stderr)")
		slowDir     = fs.String("slow-trace-dir", "", "tail-sampled slow-request traces: flush <dir>/<request-id>.jsonl for requests over -slow-threshold (or the sliding p99, or ending 504/panic); implies per-query timing on analyze requests")
		slowThresh  = fs.Duration("slow-threshold", 0, "fixed slow-request trigger for -slow-trace-dir (0 = p99 and failure triggers only)")
		checkProm   = fs.Bool("check-metrics", false, "render the /metrics exposition once, validate it against the text-format parser, and exit")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	cfg := serve.Config{
		Specs:    loadSpecs(*specName, *specFile),
		SpecName: *specName,
		Options: rid.Options{
			MaxPaths:    *maxPaths,
			MaxSubcases: *maxSubs,
			Workers:     *workers,
			FuncTimeout: *funcTO,
			CacheDir:    *cacheDir,
			CacheURL:    *cacheURL,
			SpecPacks:   splitList(*specPacks),
		},
		CorpusDir:      *dir,
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		SlowTraceDir:   *slowDir,
		SlowThreshold:  *slowThresh,
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "rid serve: ", log.LstdFlags)
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("access log: %v", err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *checkProm {
		// Self-check mode: render the daemon's own exposition to memory
		// and round-trip it through the validating parser. No listener.
		if err := srv.CheckMetrics(); err != nil {
			fatalf("metrics self-check: %v", err)
		}
		fmt.Println("metrics exposition OK")
		return
	}
	actual, err := srv.Start(*addr)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "rid: serving analysis API on http://%s (spec %s, max-inflight %d, request-timeout %v)\n",
		actual, *specName, *maxInflight, *reqTimeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Fprintf(os.Stderr, "rid: shutting down (draining up to %v)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fatalf("shutdown: %v", err)
	}
}

// runStoreServe implements `rid storeserve`: the fleet summary store
// server. It exposes one store directory over HTTP (get/put/has-batch on
// raw validated entries, /healthz, /metrics) so any number of rid,
// ridbench, and `rid serve` processes can share warm analysis results by
// pointing -cache-url at it. Blocks until interrupted, then drains.
func runStoreServe(args []string) {
	fs := flag.NewFlagSet("rid storeserve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "localhost:8081", "listen address (port 0 picks a free one)")
		cacheDir    = fs.String("cache-dir", "", "store directory to serve (required; created if absent)")
		maxInflight = fs.Int("max-inflight", 32, "concurrent store operations; more are queued")
		queueDepth  = fs.Int("queue-depth", 0, "operations waiting for a slot before 429 (0 = 4x max-inflight)")
		queueWait   = fs.Duration("queue-wait", time.Second, "longest a queued operation waits for a slot before 429")
		failEvery   = fs.Int("fail-every", 0, "fault injection: make every Nth store operation fail with 500 (0 = off; for degradation drills)")
		drain       = fs.Duration("drain", 5*time.Second, "how long shutdown waits for in-flight operations")
		quiet       = fs.Bool("quiet", false, "no per-event log lines")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *cacheDir == "" {
		fatalf("storeserve: -cache-dir is required")
	}
	cfg := remote.ServerConfig{
		Dir:         *cacheDir,
		MaxInflight: *maxInflight,
		QueueDepth:  *queueDepth,
		QueueWait:   *queueWait,
		FailEvery:   *failEvery,
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "rid storeserve: ", log.LstdFlags)
	}
	srv, err := remote.NewServer(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	actual, err := srv.Start(*addr)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "rid: serving summary store %s on http://%s (max-inflight %d)\n",
		*cacheDir, actual, *maxInflight)
	if *failEvery > 0 {
		fmt.Fprintf(os.Stderr, "rid: storeserve fault injection on: every %dth operation fails\n", *failEvery)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Fprintf(os.Stderr, "rid: storeserve shutting down (draining up to %v)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fatalf("shutdown: %v", err)
	}
}

// runExplain implements `rid explain`: the analysis with provenance
// capture and witness replay on, reported as full per-bug derivations
// (text to stdout, optionally a self-contained HTML page).
func runExplain(args []string) {
	fs := flag.NewFlagSet("rid explain", flag.ExitOnError)
	var (
		specName  = fs.String("spec", "linux-dpm", "base API specs: a built-in pack (fd, linux-dpm, lock, python-c) or a spec-DSL file path")
		specPacks = fs.String("spec-pack", "", "comma-separated built-in packs merged into -spec")
		specFile  = fs.String("spec-file", "", "additional summary-DSL file to merge")
		dir       = fs.String("dir", "", "analyze every *.c file under this directory")
		fnFilter  = fs.String("fn", "", "explain only bugs in this comma-separated function list")
		htmlOut   = fs.String("html", "", "also write a self-contained HTML evidence page to this file")
		workers   = fs.Int("workers", 1, "scheduler workers (negative = all cores)")
		trace     = fs.String("trace", "", "with sources: write a JSONL span log to this file; without sources: read, validate and summarize an existing trace file (e.g. a serve slow-trace)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	// Trace-read mode: `rid explain -trace FILE` with no sources views an
	// existing trace instead of writing one.
	if *trace != "" && *dir == "" && len(fs.Args()) == 0 {
		if _, err := os.Stat(*trace); err == nil {
			runExplainTrace(*trace)
			return
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	specs := loadSpecs(*specName, *specFile)

	a := rid.New(specs)
	opts := rid.Options{Workers: *workers, Provenance: true, SpecPacks: splitList(*specPacks)}
	traceW := openTrace(*trace)
	if traceW != nil {
		defer traceW.close()
		opts.TraceWriter = traceW.buf
	}
	a.SetOptions(opts)

	if *dir != "" {
		if err := a.AddDir(*dir); err != nil {
			fatalf("%v", err)
		}
	}
	for _, f := range fs.Args() {
		if err := a.AddFile(f); err != nil {
			fatalf("%v", err)
		}
	}
	if a.NumFunctions() == 0 {
		fatalf("no functions to analyze (pass files or -dir)")
	}

	res, err := a.RunContext(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	if *fnFilter != "" {
		res = res.FilterFunctions(strings.Split(*fnFilter, ",")...)
	}
	if len(res.Bugs) == 0 {
		fmt.Println("no inconsistent path pairs found")
	} else if err := res.WriteExplain(os.Stdout); err != nil {
		fatalf("%v", err)
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatalf("%v", err)
		}
		werr := res.WriteExplainHTML(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatalf("%v", werr)
		}
		fmt.Fprintf(os.Stderr, "rid: wrote HTML evidence report to %s\n", *htmlOut)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "rid: run canceled (%v); results are partial\n", ctx.Err())
		exit(3)
	}
	if len(res.Bugs) > 0 {
		exit(1)
	}
}

// runSeparate implements the §5.3 separate-compilation mode: each file is
// lowered on its own and file groups are analyzed in dependency order with
// a shared summary database.
func runSeparate(ctx context.Context, paths []string, specName string, specPacks []string, specFile string, opts core.Options, saveSums string, diag, metrics bool, format string) {
	files := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatalf("%v", err)
		}
		files[p] = string(data)
	}
	if len(files) == 0 {
		fatalf("-separate needs explicit file arguments")
	}
	sp, err := spec.Pack(specName)
	if err != nil {
		data, rerr := os.ReadFile(specName)
		if rerr != nil {
			fatalf("unknown -spec %q (want a built-in pack: fd, linux-dpm, lock, python-c, or a spec file path)", specName)
		}
		if sp, err = spec.Parse(specName, string(data)); err != nil {
			fatalf("%v", err)
		}
	}
	for _, name := range specPacks {
		p, err := spec.Pack(name)
		if err != nil {
			fatalf("%v", err)
		}
		if err := sp.MergeStrict(p); err != nil {
			fatalf("spec pack %s: %v", name, err)
		}
	}
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			fatalf("%v", err)
		}
		extra, err := spec.Parse(specFile, string(data))
		if err != nil {
			fatalf("%v", err)
		}
		if err := sp.MergeStrict(extra); err != nil {
			fatalf("%s: %v", specFile, err)
		}
	}
	res, err := core.AnalyzeFiles(ctx, files, sp, opts)
	if err != nil {
		fatalf("%v", err)
	}
	for _, r := range res.ReportsByFunction() {
		fmt.Println(r)
	}
	if diag {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if metrics {
		f, ferr := report.ParseFormat(format)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		if err := report.WriteMetrics(os.Stdout, f, opts.Obs.Registry().Snapshot()); err != nil {
			fatalf("%v", err)
		}
	}
	if saveSums != "" {
		if err := saveDB(res.DB, saveSums); err != nil {
			fatalf("%v", err)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "rid: run canceled (%v); results are partial\n", ctx.Err())
		exit(3)
	}
	if len(res.Reports) > 0 {
		exit(1)
	}
}

// loadSpecs resolves the -spec/-spec-file pair shared by every
// subcommand. -spec accepts a built-in pack name (fd, linux-dpm, lock,
// python-c) or a path to a spec DSL file; -spec-file merges an extra DSL
// file on top, rejecting conflicting API redefinitions.
func loadSpecs(specName, specFile string) rid.Specs {
	specs, err := rid.SpecPack(specName)
	if err != nil {
		data, rerr := os.ReadFile(specName)
		if rerr != nil {
			fatalf("unknown -spec %q (want a built-in pack: fd, linux-dpm, lock, python-c, or a spec file path)", specName)
		}
		specs, err = rid.Specs{}.Parse(specName, string(data))
		if err != nil {
			fatalf("%v", err)
		}
	}
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			fatalf("%v", err)
		}
		var perr error
		specs, perr = specs.Parse(specFile, string(data))
		if perr != nil {
			fatalf("%v", perr)
		}
	}
	return specs
}

// splitList parses a comma-separated flag value into its non-empty
// elements.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// serveDebug starts the pprof/expvar server for -separate mode (the main
// path uses Analyzer.ServeDebug) and returns its stop function.
func serveDebug(addr string, reg *obs.Registry) func() {
	stop, actual, err := obs.Serve(addr, reg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "rid: serving /debug/pprof/ and /debug/vars on http://%s\n", actual)
	return func() { stop() } //nolint:errcheck
}

// traceSink is the -trace destination: the JSONL tracer writes through a
// buffer (span emission stays cheap under -workers), and close flushes it
// before the file closes. close runs via defer on EVERY exit path — the
// exit() unwinding above guarantees that even the exit-1 (bugs found) and
// exit-3 (degraded) paths leave a complete, parseable trace on disk.
type traceSink struct {
	buf *bufio.Writer
	f   *os.File
}

// openTrace creates the -trace file; nil when tracing is off.
func openTrace(path string) *traceSink {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	return &traceSink{buf: bufio.NewWriterSize(f, 64<<10), f: f}
}

// close flushes and closes the trace, surfacing write errors a plain
// deferred Close would swallow.
func (t *traceSink) close() {
	err := t.buf.Flush()
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rid: closing trace file: %v\n", err)
	}
}

func saveDB(db *summary.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

// fatalf reports a usage/setup error and exits 2, unwinding through the
// pending defers (trace flush, debug-server stop) on the way out.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rid: "+format+"\n", args...)
	exit(2)
}
