// Command rid analyzes mini-C sources for reference count bugs using
// inconsistent path pair checking.
//
// Usage:
//
//	rid [flags] file.c [file2.c ...]
//	rid [flags] -dir path/to/tree
//
// Flags select the predefined API specifications (-spec linux-dpm or
// -spec python-c, plus -spec-file for custom DSL files), tune the path and
// sub-case budgets, and control output verbosity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/summary"
	"repro/rid"
)

func main() {
	var (
		specName = flag.String("spec", "linux-dpm", "predefined API specs: linux-dpm or python-c")
		specFile = flag.String("spec-file", "", "additional summary-DSL file to merge")
		dir      = flag.String("dir", "", "analyze every *.c file under this directory")
		maxPaths = flag.Int("max-paths", 100, "maximum paths enumerated per function")
		maxSubs  = flag.Int("max-subcases", 10, "maximum summary entries per path")
		cat2     = flag.Int("cat2-conds", 3, "category-2 complexity gate (conditional branches)")
		workers  = flag.Int("workers", 1, "parallel SCC workers (-1 = all cores)")
		verbose  = flag.Bool("v", false, "print full two-entry evidence for each bug")
		stats    = flag.Bool("stats", false, "print classification and analysis statistics")
		separate = flag.Bool("separate", false, "analyze files separately with a shared summary DB (§5.3)")
		saveSums = flag.String("save-summaries", "", "write the computed summary database to this JSON file")
		dotFn    = flag.String("dot", "", "print the named function's CFG in Graphviz dot syntax and exit")
		format   = flag.String("format", "text", "report format: text, json or sarif")
		suppress = flag.String("suppress", "", "comma-separated function names whose reports are discarded")
	)
	flag.Parse()

	var specs rid.Specs
	switch *specName {
	case "linux-dpm":
		specs = rid.LinuxDPMSpecs()
	case "python-c":
		specs = rid.PythonCSpecs()
	default:
		fatalf("unknown -spec %q (want linux-dpm or python-c)", *specName)
	}
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatalf("%v", err)
		}
		var perr error
		specs, perr = specs.Parse(*specFile, string(data))
		if perr != nil {
			fatalf("%v", perr)
		}
	}

	if *separate {
		runSeparate(flag.Args(), *specName, *specFile, *workers, *saveSums)
		return
	}

	a := rid.New(specs)
	opts := rid.Options{
		MaxPaths:     *maxPaths,
		MaxSubcases:  *maxSubs,
		MaxCat2Conds: *cat2,
		Workers:      *workers,
	}
	if *suppress != "" {
		opts.Suppress = strings.Split(*suppress, ",")
	}
	a.SetOptions(opts)

	if *dir != "" {
		if err := a.AddDir(*dir); err != nil {
			fatalf("%v", err)
		}
	}
	for _, f := range flag.Args() {
		if err := a.AddFile(f); err != nil {
			fatalf("%v", err)
		}
	}
	if a.NumFunctions() == 0 {
		fatalf("no functions to analyze (pass files or -dir)")
	}

	if *dotFn != "" {
		dot := a.FunctionCFG(*dotFn)
		if dot == "" {
			fatalf("function %q not defined", *dotFn)
		}
		fmt.Print(dot)
		return
	}

	res, err := a.Run()
	if err != nil {
		fatalf("%v", err)
	}
	if err := res.WriteReports(os.Stdout, *format, *verbose); err != nil {
		fatalf("%v", err)
	}
	if *stats {
		fmt.Printf("functions: %d total, %d analyzed, %d paths\n",
			res.FuncsTotal, res.FuncsAnalyzed, res.PathsEnumerated)
		c := res.Categories
		fmt.Printf("categories: refcount=%d affecting(analyzed)=%d affecting(skipped)=%d other=%d\n",
			c.RefcountChanging, c.AffectingAnalyzed, c.AffectingUnanalyzed, c.Other)
	}
	if len(res.Bugs) > 0 {
		os.Exit(1)
	}
}

// runSeparate implements the §5.3 separate-compilation mode: each file is
// lowered on its own and file groups are analyzed in dependency order with
// a shared summary database.
func runSeparate(paths []string, specName, specFile string, workers int, saveSums string) {
	files := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatalf("%v", err)
		}
		files[p] = string(data)
	}
	if len(files) == 0 {
		fatalf("-separate needs explicit file arguments")
	}
	var sp *spec.Specs
	switch specName {
	case "linux-dpm":
		sp = spec.LinuxDPM()
	case "python-c":
		sp = spec.PythonC()
	default:
		fatalf("unknown -spec %q", specName)
	}
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			fatalf("%v", err)
		}
		extra, err := spec.Parse(specFile, string(data))
		if err != nil {
			fatalf("%v", err)
		}
		sp.Merge(extra)
	}
	res, err := core.AnalyzeFiles(files, sp, core.Options{Workers: workers})
	if err != nil {
		fatalf("%v", err)
	}
	for _, r := range res.ReportsByFunction() {
		fmt.Println(r)
	}
	if saveSums != "" {
		if err := saveDB(res.DB, saveSums); err != nil {
			fatalf("%v", err)
		}
	}
	if len(res.Reports) > 0 {
		os.Exit(1)
	}
}

func saveDB(db *summary.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rid: "+format+"\n", args...)
	os.Exit(2)
}
