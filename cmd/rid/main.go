// Command rid analyzes mini-C sources for reference count bugs using
// inconsistent path pair checking.
//
// Usage:
//
//	rid [flags] file.c [file2.c ...]
//	rid [flags] -dir path/to/tree
//	rid explain [-fn F] [-html out.html] file.c [file2.c ...]
//
// The explain subcommand re-runs the analysis with provenance capture on
// and prints, per bug, the complete derivation: both CFG paths with
// block-level source positions, the entry constraints before and after
// the projection of locals, every callee summary entry applied, the
// deciding solver query, and the witness-replay verdict
// (confirmed-by-replay / replay-diverged / not-replayable). With -html
// it also writes a self-contained evidence page embedding a Graphviz
// overlay of the two paths.
//
// Flags select the predefined API specifications (-spec linux-dpm or
// -spec python-c, plus -spec-file for custom DSL files), tune the path and
// sub-case budgets, and control output verbosity. Long runs can be
// bounded: -deadline caps the whole run, -func-timeout caps any single
// function, and both degrade gracefully — partial results are printed and
// -diag lists exactly what was skipped or truncated. Interrupting with
// ^C likewise cancels the run and prints what was found so far.
//
// Repeated runs over a mostly-unchanged tree can reuse results:
// -cache-dir names a persistent summary store, and warm runs skip every
// function whose content digest (its own IR plus its callees', see
// internal/store) is unchanged, with byte-identical output.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/summary"
	"repro/rid"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		runExplain(os.Args[2:])
		return
	}
	var (
		specName = flag.String("spec", "linux-dpm", "predefined API specs: linux-dpm or python-c")
		specFile = flag.String("spec-file", "", "additional summary-DSL file to merge")
		dir      = flag.String("dir", "", "analyze every *.c file under this directory")
		maxPaths = flag.Int("max-paths", 100, "maximum paths enumerated per function")
		maxSubs  = flag.Int("max-subcases", 10, "maximum summary entries per path")
		cat2     = flag.Int("cat2-conds", 3, "category-2 complexity gate (conditional branches)")
		workers  = flag.Int("workers", 1, "scheduler workers (negative = all cores)")
		deadline = flag.Duration("deadline", 0, "overall run deadline (0 = none); partial results are printed")
		funcTO   = flag.Duration("func-timeout", 0, "per-function wall-clock budget (0 = none)")
		maxCons  = flag.Int("solver-max-constraints", 0, "solver give-up threshold in inequalities per query (0 = default)")
		maxSplit = flag.Int("solver-max-splits", 0, "solver disequality case-split budget per query (0 = default)")
		verbose  = flag.Bool("v", false, "print full two-entry evidence for each bug")
		stats    = flag.Bool("stats", false, "print classification and analysis statistics")
		diag     = flag.Bool("diag", false, "print degradation diagnostics (truncations, timeouts, panics)")
		separate = flag.Bool("separate", false, "analyze files separately with a shared summary DB (§5.3)")
		saveSums = flag.String("save-summaries", "", "write the computed summary database to this JSON file")
		dotFn    = flag.String("dot", "", "print the named function's CFG in Graphviz dot syntax and exit")
		format   = flag.String("format", "text", "report format: text, json or sarif")
		suppress = flag.String("suppress", "", "comma-separated function names whose reports are discarded")
		trace    = flag.String("trace", "", "write a JSONL span log of every pipeline phase to this file")
		cacheDir = flag.String("cache-dir", "", "persistent summary store directory: warm runs skip unchanged functions (see README)")
		metrics  = flag.Bool("metrics", false, "print the metrics registry (counters and phase histograms) after the run")
		pprofSrv = flag.String("pprof", "", "serve /debug/pprof/ and /debug/vars on this address (e.g. localhost:6060) for the duration of the run")
	)
	flag.Parse()

	// ^C cancels the analysis; the run returns promptly with partial
	// results instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var specs rid.Specs
	switch *specName {
	case "linux-dpm":
		specs = rid.LinuxDPMSpecs()
	case "python-c":
		specs = rid.PythonCSpecs()
	default:
		fatalf("unknown -spec %q (want linux-dpm or python-c)", *specName)
	}
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatalf("%v", err)
		}
		var perr error
		specs, perr = specs.Parse(*specFile, string(data))
		if perr != nil {
			fatalf("%v", perr)
		}
	}

	var traceFile *os.File
	if *trace != "" {
		var err error
		traceFile, err = os.Create(*trace)
		if err != nil {
			fatalf("%v", err)
		}
		defer closeTrace(traceFile)
	}

	if *separate {
		copts := core.Options{
			Workers:      *workers,
			MaxCat2Conds: *cat2,
			FuncTimeout:  *funcTO,
			SolverLimits: solver.Limits{MaxConstraints: *maxCons, MaxSplits: *maxSplit},
			CacheDir:     *cacheDir,
		}
		copts.Exec.MaxPaths = *maxPaths
		copts.Exec.MaxSubcases = *maxSubs
		var tracer obs.Tracer
		if traceFile != nil {
			tracer = obs.NewJSONLTracer(traceFile)
		}
		copts.Obs = obs.New(tracer, obs.NewRegistry())
		if *metrics {
			copts.Obs.EnableQueryTiming()
		}
		if *pprofSrv != "" {
			stopSrv := serveDebug(*pprofSrv, copts.Obs.Registry())
			defer stopSrv()
		}
		runSeparate(ctx, flag.Args(), *specName, *specFile, copts, *saveSums, *diag, *metrics, *format)
		return
	}

	a := rid.New(specs)
	opts := rid.Options{
		MaxPaths:             *maxPaths,
		MaxSubcases:          *maxSubs,
		MaxCat2Conds:         *cat2,
		Workers:              *workers,
		FuncTimeout:          *funcTO,
		SolverMaxConstraints: *maxCons,
		SolverMaxSplits:      *maxSplit,
		QueryTiming:          *metrics,
		CacheDir:             *cacheDir,
	}
	if traceFile != nil {
		opts.TraceWriter = traceFile
	}
	if *suppress != "" {
		opts.Suppress = strings.Split(*suppress, ",")
	}
	a.SetOptions(opts)

	if *pprofSrv != "" {
		stop, addr, err := a.ServeDebug(*pprofSrv)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "rid: serving /debug/pprof/ and /debug/vars on http://%s\n", addr)
		defer stop() //nolint:errcheck
	}

	if *dir != "" {
		if err := a.AddDir(*dir); err != nil {
			fatalf("%v", err)
		}
	}
	for _, f := range flag.Args() {
		if err := a.AddFile(f); err != nil {
			fatalf("%v", err)
		}
	}
	if a.NumFunctions() == 0 {
		fatalf("no functions to analyze (pass files or -dir)")
	}

	if *dotFn != "" {
		dot := a.FunctionCFG(*dotFn)
		if dot == "" {
			fatalf("function %q not defined", *dotFn)
		}
		fmt.Print(dot)
		return
	}

	res, err := a.RunContext(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	if err := res.WriteReports(os.Stdout, *format, *verbose); err != nil {
		fatalf("%v", err)
	}
	if *diag {
		if err := res.WriteDiagnostics(os.Stdout, *format); err != nil {
			fatalf("%v", err)
		}
	}
	if *stats {
		fmt.Printf("functions: %d total, %d analyzed, %d paths\n",
			res.FuncsTotal, res.FuncsAnalyzed, res.PathsEnumerated)
		c := res.Categories
		fmt.Printf("categories: refcount=%d affecting(analyzed)=%d affecting(skipped)=%d other=%d\n",
			c.RefcountChanging, c.AffectingAnalyzed, c.AffectingUnanalyzed, c.Other)
		if res.Degraded() {
			fmt.Printf("degraded: %d truncated, %d timed out, %d panicked, %d diagnostics\n",
				res.FuncsTruncated, res.FuncsTimedOut, res.FuncsPanicked, len(res.Diagnostics))
		}
	}
	if *metrics {
		if err := res.WriteMetrics(os.Stdout, *format); err != nil {
			fatalf("%v", err)
		}
	}
	if ctx.Err() != nil {
		// Partial results were printed; make the truncation unmissable.
		fmt.Fprintf(os.Stderr, "rid: run canceled (%v); results are partial\n", ctx.Err())
		os.Exit(3)
	}
	if len(res.Bugs) > 0 {
		os.Exit(1)
	}
}

// runExplain implements `rid explain`: the analysis with provenance
// capture and witness replay on, reported as full per-bug derivations
// (text to stdout, optionally a self-contained HTML page).
func runExplain(args []string) {
	fs := flag.NewFlagSet("rid explain", flag.ExitOnError)
	var (
		specName = fs.String("spec", "linux-dpm", "predefined API specs: linux-dpm or python-c")
		specFile = fs.String("spec-file", "", "additional summary-DSL file to merge")
		dir      = fs.String("dir", "", "analyze every *.c file under this directory")
		fnFilter = fs.String("fn", "", "explain only bugs in this comma-separated function list")
		htmlOut  = fs.String("html", "", "also write a self-contained HTML evidence page to this file")
		workers  = fs.Int("workers", 1, "scheduler workers (negative = all cores)")
		trace    = fs.String("trace", "", "write a JSONL span log to this file (evidence query refs gain trace seq numbers)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var specs rid.Specs
	switch *specName {
	case "linux-dpm":
		specs = rid.LinuxDPMSpecs()
	case "python-c":
		specs = rid.PythonCSpecs()
	default:
		fatalf("unknown -spec %q (want linux-dpm or python-c)", *specName)
	}
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatalf("%v", err)
		}
		var perr error
		specs, perr = specs.Parse(*specFile, string(data))
		if perr != nil {
			fatalf("%v", perr)
		}
	}

	a := rid.New(specs)
	opts := rid.Options{Workers: *workers, Provenance: true}
	var traceFile *os.File
	if *trace != "" {
		var err error
		traceFile, err = os.Create(*trace)
		if err != nil {
			fatalf("%v", err)
		}
		defer closeTrace(traceFile)
		opts.TraceWriter = traceFile
	}
	a.SetOptions(opts)

	if *dir != "" {
		if err := a.AddDir(*dir); err != nil {
			fatalf("%v", err)
		}
	}
	for _, f := range fs.Args() {
		if err := a.AddFile(f); err != nil {
			fatalf("%v", err)
		}
	}
	if a.NumFunctions() == 0 {
		fatalf("no functions to analyze (pass files or -dir)")
	}

	res, err := a.RunContext(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	if *fnFilter != "" {
		res = res.FilterFunctions(strings.Split(*fnFilter, ",")...)
	}
	if len(res.Bugs) == 0 {
		fmt.Println("no inconsistent path pairs found")
	} else if err := res.WriteExplain(os.Stdout); err != nil {
		fatalf("%v", err)
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatalf("%v", err)
		}
		werr := res.WriteExplainHTML(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatalf("%v", werr)
		}
		fmt.Fprintf(os.Stderr, "rid: wrote HTML evidence report to %s\n", *htmlOut)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "rid: run canceled (%v); results are partial\n", ctx.Err())
		os.Exit(3)
	}
	if len(res.Bugs) > 0 {
		os.Exit(1)
	}
}

// runSeparate implements the §5.3 separate-compilation mode: each file is
// lowered on its own and file groups are analyzed in dependency order with
// a shared summary database.
func runSeparate(ctx context.Context, paths []string, specName, specFile string, opts core.Options, saveSums string, diag, metrics bool, format string) {
	files := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatalf("%v", err)
		}
		files[p] = string(data)
	}
	if len(files) == 0 {
		fatalf("-separate needs explicit file arguments")
	}
	var sp *spec.Specs
	switch specName {
	case "linux-dpm":
		sp = spec.LinuxDPM()
	case "python-c":
		sp = spec.PythonC()
	default:
		fatalf("unknown -spec %q", specName)
	}
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			fatalf("%v", err)
		}
		extra, err := spec.Parse(specFile, string(data))
		if err != nil {
			fatalf("%v", err)
		}
		sp.Merge(extra)
	}
	res, err := core.AnalyzeFiles(ctx, files, sp, opts)
	if err != nil {
		fatalf("%v", err)
	}
	for _, r := range res.ReportsByFunction() {
		fmt.Println(r)
	}
	if diag {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if metrics {
		f, ferr := report.ParseFormat(format)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		if err := report.WriteMetrics(os.Stdout, f, opts.Obs.Registry().Snapshot()); err != nil {
			fatalf("%v", err)
		}
	}
	if saveSums != "" {
		if err := saveDB(res.DB, saveSums); err != nil {
			fatalf("%v", err)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "rid: run canceled (%v); results are partial\n", ctx.Err())
		os.Exit(3)
	}
	if len(res.Reports) > 0 {
		os.Exit(1)
	}
}

// serveDebug starts the pprof/expvar server for -separate mode (the main
// path uses Analyzer.ServeDebug) and returns its stop function.
func serveDebug(addr string, reg *obs.Registry) func() {
	stop, actual, err := obs.Serve(addr, reg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "rid: serving /debug/pprof/ and /debug/vars on http://%s\n", actual)
	return func() { stop() } //nolint:errcheck
}

// closeTrace closes the -trace file, surfacing a write error that a
// deferred Close would otherwise swallow.
func closeTrace(f *os.File) {
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rid: closing trace file: %v\n", err)
	}
}

func saveDB(db *summary.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rid: "+format+"\n", args...)
	os.Exit(2)
}
