// Trace-file viewer behind `rid explain -trace FILE` (no sources): read
// a JSONL span trace — written by `rid -trace`, a serve request with
// trace=true, or the daemon's tail-sampled slow-request capture — and
// validate + summarize it instead of running an analysis. Validation is
// strict where the schema is load-bearing (required keys, types, seq
// strictly increasing in file order) and tolerant where it is
// append-only (unknown extra keys, unknown phases).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// traceSpanLine is one span event; pointer fields distinguish absent
// from zero during validation.
type traceSpanLine struct {
	Seq     *int64  `json:"seq"`
	Phase   *string `json:"phase"`
	Fn      *string `json:"fn"`
	StartUS *int64  `json:"start_us"`
	DurUS   *int64  `json:"dur_us"`
}

// traceHeader is the optional first line of a daemon-flushed slow trace.
type traceHeader struct {
	RequestID *string `json:"request_id"`
	Status    int     `json:"status"`
	ElapsedUS int64   `json:"elapsed_us"`
	Dropped   int64   `json:"dropped_bytes"`
}

// runExplainTrace validates path and prints a per-phase summary and the
// slowest spans. Exits 0 on a valid trace; any schema violation is a
// usage-class error (exit 2) naming the offending line.
func runExplainTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	type agg struct {
		count int64
		total time.Duration
	}
	phases := map[string]*agg{}
	var order []string
	type slow struct {
		seq   int64
		phase string
		fn    string
		dur   time.Duration
	}
	var slowest []slow

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	lineNo, lastSeq, spans := 0, int64(0), 0
	var hdr *traceHeader
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if lineNo == 1 {
			var h traceHeader
			if err := json.Unmarshal(line, &h); err == nil && h.RequestID != nil {
				hdr = &h
				continue
			}
		}
		var s traceSpanLine
		if err := json.Unmarshal(line, &s); err != nil {
			fatalf("%s:%d: not a JSON object: %v", path, lineNo, err)
		}
		switch {
		case s.Seq == nil:
			fatalf("%s:%d: span missing \"seq\"", path, lineNo)
		case s.Phase == nil:
			fatalf("%s:%d: span missing \"phase\"", path, lineNo)
		case s.Fn == nil:
			fatalf("%s:%d: span missing \"fn\"", path, lineNo)
		case s.StartUS == nil:
			fatalf("%s:%d: span missing \"start_us\"", path, lineNo)
		case s.DurUS == nil:
			fatalf("%s:%d: span missing \"dur_us\"", path, lineNo)
		case *s.Seq <= lastSeq:
			fatalf("%s:%d: seq %d not strictly increasing (previous %d)", path, lineNo, *s.Seq, lastSeq)
		case *s.DurUS < 0:
			fatalf("%s:%d: negative dur_us %d", path, lineNo, *s.DurUS)
		}
		lastSeq = *s.Seq
		spans++
		a := phases[*s.Phase]
		if a == nil {
			a = &agg{}
			phases[*s.Phase] = a
			order = append(order, *s.Phase)
		}
		d := time.Duration(*s.DurUS) * time.Microsecond
		a.count++
		a.total += d
		slowest = append(slowest, slow{seq: *s.Seq, phase: *s.Phase, fn: *s.Fn, dur: d})
		if len(slowest) > 64 {
			sort.Slice(slowest, func(i, j int) bool { return slowest[i].dur > slowest[j].dur })
			slowest = slowest[:32]
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("%s: %v", path, err)
	}
	if spans == 0 {
		fatalf("%s: no span lines", path)
	}

	fmt.Printf("trace %s: %d spans, seq 1..%d\n", path, spans, lastSeq)
	if hdr != nil {
		fmt.Printf("request %s: status %d, elapsed %.1fms", *hdr.RequestID, hdr.Status,
			float64(hdr.ElapsedUS)/1000)
		if hdr.Dropped > 0 {
			fmt.Printf(" (trace truncated: %d bytes dropped)", hdr.Dropped)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("%-10s %8s %12s\n", "phase", "spans", "total")
	for _, ph := range order {
		a := phases[ph]
		fmt.Printf("%-10s %8d %12s\n", ph, a.count, a.total.Round(time.Microsecond))
	}
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].dur > slowest[j].dur })
	n := len(slowest)
	if n > 5 {
		n = 5
	}
	fmt.Println()
	fmt.Println("slowest spans:")
	for _, s := range slowest[:n] {
		fn := s.fn
		if fn == "" {
			fn = "-"
		}
		fmt.Printf("  seq %-6d %-10s %-24s %s\n", s.seq, s.phase, fn, s.dur.Round(time.Microsecond))
	}
}
