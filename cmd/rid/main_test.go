package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// buildCLI compiles the rid binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rid")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

const buggyDriver = `
extern int pm_runtime_get_sync(struct device *dev);
extern int pm_runtime_put(struct device *dev);
extern int do_transfer(struct device *dev);

int drv_op(struct device *dev) {
    int ret;
    ret = pm_runtime_get_sync(dev);
    if (ret < 0)
        return ret;
    ret = do_transfer(dev);
    pm_runtime_put(dev);
    return ret;
}
`

func writeDriver(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "drv.c")
	if err := os.WriteFile(p, []byte(buggyDriver), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCLIReportsBugAndExitCode(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	out, err := exec.Command(bin, src).CombinedOutput()
	if err == nil {
		t.Fatal("exit code must be non-zero when bugs are found")
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "drv_op") || !strings.Contains(string(out), "[dev].pm") {
		t.Fatalf("output: %s", out)
	}
}

func TestCLISarifFormat(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	out, _ := exec.Command(bin, "-format", "sarif", src).CombinedOutput()
	s := string(out)
	if !strings.Contains(s, `"version": "2.1.0"`) || !strings.Contains(s, "RID001") {
		t.Fatalf("sarif output: %s", s)
	}
}

func TestCLISuppress(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	out, err := exec.Command(bin, "-suppress", "drv_op", src).CombinedOutput()
	if err != nil {
		t.Fatalf("suppressed run should exit 0: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) != "" {
		t.Fatalf("suppressed output: %s", out)
	}
}

func TestCLIDot(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	out, err := exec.Command(bin, "-dot", "drv_op", src).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), `digraph "drv_op"`) {
		t.Fatalf("dot output: %s", out)
	}
}

func TestCLIStats(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	out, _ := exec.Command(bin, "-stats", src).CombinedOutput()
	if !strings.Contains(string(out), "categories:") {
		t.Fatalf("stats output: %s", out)
	}
}

func TestCLIUnknownSpec(t *testing.T) {
	bin := buildCLI(t)
	out, err := exec.Command(bin, "-spec", "bogus", "x.c").CombinedOutput()
	if err == nil || !strings.Contains(string(out), "unknown -spec") {
		t.Fatalf("expected spec error, got: %s", out)
	}
}

const buggyLockUser = `
extern int mutex_trylock(struct lock *l);
extern void mutex_unlock(struct lock *l);
extern int dev_io(struct lock *l);

int lk_op(struct lock *l) {
    int ret;
    if (mutex_trylock(l) == 0)
        return -1;
    ret = dev_io(l);
    if (ret < 0)
        return ret;
    mutex_unlock(l);
    return ret;
}
`

// TestCLISpecPackFindsLockBug pins the -spec-pack happy path: merging the
// lock pack onto the default refcount specs finds a lock imbalance and
// exits 1, with the report naming the lock resource.
func TestCLISpecPackFindsLockBug(t *testing.T) {
	bin := buildCLI(t)
	src := filepath.Join(t.TempDir(), "lk.c")
	if err := os.WriteFile(src, []byte(buggyLockUser), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-spec-pack", "lock", src).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 (bug found), got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "lk_op") || !strings.Contains(string(out), "lock [l].held") {
		t.Fatalf("output: %s", out)
	}
	// Without the pack the same source is silent: the lock APIs are
	// unknown externs to the refcount specs.
	out2, err2 := exec.Command(bin, src).CombinedOutput()
	if err2 != nil {
		t.Fatalf("pack-less run should exit 0: %v\n%s", err2, out2)
	}
}

// TestCLISpecLoaderErrors pins the loader's exact diagnostics and the
// exit-2 contract on each failure path: a missing spec file, a pack
// conflict via -spec-file, a malformed delta, and an unknown pack name.
func TestCLISpecLoaderErrors(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "x.c")
	if err := os.WriteFile(src, []byte("int f(void) { return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	missing := filepath.Join(dir, "nope.spec")

	dup := filepath.Join(dir, "dup.spec")
	if err := os.WriteFile(dup, []byte(
		"summary spin_lock(l) { entry { cons: true; changes: [l].held -= 1; return: ; } }\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	bad := filepath.Join(dir, "bad.spec")
	if err := os.WriteFile(bad, []byte(
		"summary f(x) {\n  entry { cons: true; changes: [x].held += q; return: ; }\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing spec file", []string{"-spec-file", missing, src},
			"rid: open " + missing + ": no such file or directory"},
		{"duplicate api across packs", []string{"-spec", "lock", "-spec-file", dup, src},
			"rid: " + dup + `: conflicting definitions of API "spin_lock"`},
		{"malformed delta", []string{"-spec-file", bad, src},
			"rid: " + bad + `:2: expected integer delta, found "q"`},
		{"unknown pack name", []string{"-spec-pack", "bogus", src},
			`rid: unknown spec pack "bogus" (have fd, linux-dpm, lock, python-c)`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 2 {
				t.Fatalf("want exit 2, got %v\n%s", err, out)
			}
			if got := strings.TrimSpace(string(out)); got != tc.want {
				t.Fatalf("diagnostic:\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

func TestCLISeparateMode(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	w := filepath.Join(dir, "w.c")
	d := filepath.Join(dir, "d.c")
	if err := os.WriteFile(w, []byte(`
int ss_get(struct ss_iface *intf) {
    int status;
    status = pm_runtime_get_sync(&intf->dev);
    if (status < 0)
        pm_runtime_put_sync(&intf->dev);
    if (status > 0)
        status = 0;
    return status;
}
void ss_put(struct ss_iface *intf) {
    pm_runtime_put_sync(&intf->dev);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d, []byte(`
int op(struct ss_iface *intf, struct device *aux) {
    int result;
    result = ss_get(intf);
    if (result)
        goto error;
    result = create_thing(aux);
    if (result)
        goto error;
    ss_put(intf);
error:
    return result;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	sums := filepath.Join(dir, "sums.json")
	out, err := exec.Command(bin, "-separate", "-save-summaries", sums, w, d).CombinedOutput()
	if err == nil {
		t.Fatal("bug expected in separate mode")
	}
	if !strings.Contains(string(out), "op") {
		t.Fatalf("output: %s", out)
	}
	data, err := os.ReadFile(sums)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ss_get") {
		t.Fatal("summary database missing wrapper")
	}
}

func TestCLIDiagListsTruncation(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "m.c")
	if err := os.WriteFile(src, []byte(`
int many_paths(struct device *dev, int a, int b, int c) {
    pm_runtime_get(dev);
    if (a) do_transfer(dev);
    if (b) do_transfer(dev);
    if (c) do_transfer(dev);
    pm_runtime_put(dev);
    return 0;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := exec.Command(bin, "-max-paths", "1", "-diag", "-stats", src).CombinedOutput()
	s := string(out)
	if !strings.Contains(s, "many_paths: path-budget:") {
		t.Fatalf("-diag output missing truncation line: %s", s)
	}
	if !strings.Contains(s, "degraded: 1 truncated") {
		t.Fatalf("-stats output missing degradation summary: %s", s)
	}
	// Without -diag the same run stays quiet about the truncation detail.
	out2, _ := exec.Command(bin, "-max-paths", "1", src).CombinedOutput()
	if strings.Contains(string(out2), "path-budget") {
		t.Fatalf("diagnostics printed without -diag: %s", out2)
	}
}

func TestCLIDeadlinePartialExit(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	out, err := exec.Command(bin, "-deadline", "1ns", src).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("deadline run must exit 3 (partial), got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "results are partial") {
		t.Fatalf("missing partial-results notice: %s", out)
	}
}

// checkTraceJSONL asserts the trace file is complete: newline-terminated
// with every line a parseable span object. A truncated flush (the bug the
// exit-path restructure fixes: os.Exit skipping the deferred buffer
// flush) leaves either an empty file or a torn final line.
func checkTraceJSONL(t *testing.T, path string, wantSpans bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if wantSpans && len(data) == 0 {
		t.Fatal("trace file is empty: the exit path skipped the buffer flush")
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		t.Fatalf("trace file does not end in a newline (torn final span): %q", data[len(data)-50:])
	}
	for i, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		if line == "" && len(data) == 0 {
			continue
		}
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("trace line %d is not valid JSON (%v): %q", i+1, err, line)
		}
		if _, ok := span["phase"]; !ok {
			t.Fatalf("trace line %d has no phase field: %q", i+1, line)
		}
	}
}

// TestCLITraceCompleteOnBugExit pins the exit-path contract: the bugs-found
// exit(1) path must flush and close the -trace file before the process
// dies, leaving a complete JSONL log including the run-level span.
func TestCLITraceCompleteOnBugExit(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := exec.Command(bin, "-trace", tracePath, src).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 (bugs found), got %v\n%s", err, out)
	}
	checkTraceJSONL(t, tracePath, true)
	if data, _ := os.ReadFile(tracePath); !strings.Contains(string(data), `"phase":"run"`) {
		t.Fatalf("trace is missing the run-level span (flushed too early?):\n%s", data)
	}
}

// TestCLITraceCompleteOnDeadlineExit pins the same contract on the
// degraded exit(3) path: whatever spans were emitted before the deadline
// fired must be on disk, complete, when the process exits.
func TestCLITraceCompleteOnDeadlineExit(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := exec.Command(bin, "-deadline", "1ns", "-trace", tracePath, src).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 3 {
		t.Fatalf("want exit 3 (degraded), got %v\n%s", err, out)
	}
	checkTraceJSONL(t, tracePath, false)
}

// TestCLIServeReportMatchesCLI pins the serve acceptance contract: the
// daemon's report field is byte-identical to `rid` stdout for the same
// sources at every Workers setting.
func TestCLIServeReportMatchesCLI(t *testing.T) {
	bin := buildCLI(t)
	src := writeDriver(t)
	cliOut, err := exec.Command(bin, src).Output()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("cli run: %v", err)
	}

	srv, err := serve.New(serve.Config{MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		body, _ := json.Marshal(&serve.AnalyzeRequest{
			Files:   map[string]string{src: string(data)},
			Workers: workers,
			NoCache: true,
		})
		resp, _, err := serve.AnalyzeOnce(context.Background(), ts.URL, body, time.Minute)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if resp.Report != string(cliOut) {
			t.Fatalf("workers=%d: daemon report differs from CLI stdout\ncli:\n%s\ndaemon:\n%s",
				workers, cliOut, resp.Report)
		}
	}
}
